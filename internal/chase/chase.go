// Package chase implements the chase procedure for tgds and egds
// (Section 2 of the paper): the restricted (standard) and oblivious
// tgd chase with fresh labelled nulls, the egd chase with null
// identification and failure, chasing a query via freezing (Lemma 1),
// and derivation-depth tracking used to budget non-terminating chases
// (e.g. under guarded tgds).
package chase

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hom"
	"semacyclic/internal/instance"
	"semacyclic/internal/obs"
	"semacyclic/internal/term"
)

// ErrFailed reports a failing egd chase: an egd tried to equate two
// distinct rigid constants.
var ErrFailed = errors.New("chase: egd chase failed (constant clash)")

// ErrCancelled reports a chase aborted via Options.Cancel. Callers that
// need layer-specific cancellation errors (core wraps this into its own
// ErrCancelled) should test with errors.Is.
var ErrCancelled = errors.New("chase: cancelled")

// Options tunes a chase run. The zero value picks safe defaults.
type Options struct {
	// MaxSteps caps the number of tgd applications (default 100000).
	MaxSteps int
	// MaxAtoms caps the instance size (default 1000000).
	MaxAtoms int
	// MaxDepth, when positive, skips tgd applications whose derived
	// atoms would exceed this derivation depth. Initial atoms have
	// depth 0. This is the budget that makes the guarded (possibly
	// infinite) chase usable: homomorphism witnesses for containment
	// live in a bounded-depth prefix (see DESIGN.md §2).
	MaxDepth int
	// Oblivious applies tgds even when their head is already satisfied
	// (each body homomorphism fires at most once). The default is the
	// restricted chase.
	Oblivious bool
	// FreezeAsNulls treats frozen query constants (cq.FrozenConst) as
	// identifiable by egds, per the paper's convention for chase(q,Σ)
	// under egds ("special constants, treated as nulls during the
	// chase"). Query enables it automatically when the set has egds.
	FreezeAsNulls bool
	// Trace records every chase step in Result.Trace. Off by default:
	// long chases produce long traces.
	Trace bool
	// Parallelism, when > 1, evaluates tgd-body applicability for the
	// distinct dependencies of a round concurrently: each tgd's
	// triggers are collected by one goroutine against the round-start
	// instance (a read-only snapshot), and the collected triggers are
	// then fired by a single writer in dependency order, re-checked
	// against the mutated instance. The chase reaches the same fixpoint
	// as the sequential rounds — triggers enabled mid-round are picked
	// up next round — but null naming may differ from the sequential
	// interleaving. Default (0 or 1): sequential rounds.
	Parallelism int
	// Cancel, when non-nil, aborts the run as soon as the channel is
	// closed (or receives); Run then returns ErrCancelled. The channel
	// is polled before every trigger firing, every egd application and
	// every few collected triggers, so cancellation latency is bounded
	// by one chase step, not one fixpoint round.
	Cancel <-chan struct{}
}

// Step records one chase step for tracing: either a tgd application
// (TGD ≥ 0, Added lists the new atoms) or an egd merge (TGD = -1,
// Merged holds the identified pair, old then new).
type Step struct {
	TGD    int
	Added  []instance.Atom
	Merged [2]term.Term
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 100000
	}
	if o.MaxAtoms <= 0 {
		o.MaxAtoms = 1000000
	}
	return o
}

// Result is the outcome of a chase run.
type Result struct {
	// Instance is the chased instance (shared with no caller input; Run
	// clones its input database).
	Instance *instance.Instance
	// Complete reports that a fixpoint was reached: every tgd and egd
	// is satisfied. False means a budget (steps, atoms or depth)
	// truncated the run.
	Complete bool
	// Steps counts tgd applications performed.
	Steps int
	// Merges records the term identifications performed by egds, as a
	// substitution from replaced terms to their replacements (fully
	// resolved).
	Merges term.Subst
	// Depth maps each atom key to its derivation depth.
	Depth map[string]int
	// Trace lists the chase steps in order when Options.Trace was set.
	Trace []Step
	// Stats holds the always-on run counters (rounds, triggers, nulls,
	// merges). Unlike Trace these cost a handful of integer increments,
	// so they are collected unconditionally; with Trace on, TriggersFired
	// equals the number of tgd entries and Merges the number of merge
	// entries in the trace.
	Stats obs.ChaseStats
}

// Run chases db with the dependency set under the given options. The
// input database is not modified. An egd clash of rigid constants
// returns ErrFailed (wrapped), per the paper's "failure" outcome.
func Run(db *instance.Instance, set *deps.Set, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	st := &state{
		inst:   db.Clone(),
		set:    set,
		opt:    opt,
		merges: term.NewSubst(),
		depth:  make(map[string]int),
	}
	for _, a := range st.inst.AtomsUnordered() {
		st.depth[a.Key()] = 0
	}
	if err := st.run(); err != nil {
		return nil, err
	}
	st.stats.Atoms = st.inst.Len()
	st.stats.Complete = st.complete
	obs.ChaseRuns.Add(1)
	obs.ChaseRounds.Add(int64(st.stats.Rounds))
	obs.ChaseTriggersFired.Add(int64(st.stats.TriggersFired))
	obs.ChaseNulls.Add(int64(st.stats.NullsCreated))
	obs.ChaseMerges.Add(int64(st.stats.Merges))
	return &Result{
		Instance: st.inst,
		Complete: st.complete,
		Steps:    st.steps,
		Merges:   st.merges,
		Depth:    st.depth,
		Trace:    st.trace,
		Stats:    st.stats,
	}, nil
}

// Query chases the query q per Lemma 1: variables are frozen to the
// constants c(x), the resulting database is chased, and the frozen head
// tuple — adjusted for any egd merges — is returned with the result.
// When the set contains egds the frozen constants are treated as nulls,
// per the paper's convention.
func Query(q *cq.CQ, set *deps.Set, opt Options) (*Result, []term.Term, error) {
	db, frozen := q.Freeze()
	if len(set.EGDs) > 0 {
		opt.FreezeAsNulls = true
	}
	res, err := Run(db, set, opt)
	if err != nil {
		return nil, nil, err
	}
	return res, res.Merges.ResolveTuple(frozen), nil
}

type state struct {
	inst     *instance.Instance
	set      *deps.Set
	opt      Options
	steps    int
	complete bool
	merges   term.Subst
	depth    map[string]int
	trace    []Step
	stats    obs.ChaseStats
	// fired remembers body-homomorphism fingerprints for the oblivious
	// chase so each trigger fires at most once.
	fired map[string]bool
}

// cancelled polls the cancel channel without blocking (a nil channel
// never fires, so the poll is a no-op select for unconfigured runs).
func (s *state) cancelled() bool {
	select {
	case <-s.opt.Cancel:
		return true
	default:
		return false
	}
}

func (s *state) run() error {
	if s.opt.Oblivious {
		s.fired = make(map[string]bool)
	}
	truncated := false
	for {
		if s.cancelled() {
			return ErrCancelled
		}
		if err := s.egdFixpoint(); err != nil {
			return err
		}
		progressed, trunc, err := s.tgdPass()
		if err != nil {
			return err
		}
		truncated = truncated || trunc
		if !progressed {
			s.complete = !truncated
			return nil
		}
	}
}

// tgdPass applies every currently applicable tgd trigger once. It
// reports whether anything fired and whether any application was
// suppressed by a budget.
//
// Sequential rounds interleave collection and firing: tgd i's triggers
// are collected against the instance already mutated by tgds < i.
// Parallel rounds (Options.Parallelism > 1) snapshot-collect all tgds
// concurrently first, then fire under a single writer; the restricted
// re-check below keeps stale triggers sound, and triggers enabled by
// this round's firings are collected next round. A round that fires
// nothing left the instance untouched, so its snapshot was current and
// the fixpoint claim is exact in both modes.
func (s *state) tgdPass() (progressed, truncated bool, err error) {
	s.stats.Rounds++
	var collected [][]trigger
	if s.opt.Parallelism > 1 && len(s.set.TGDs) > 1 {
		collected = s.collectTriggersParallel()
	}
	for ti, t := range s.set.TGDs {
		var triggers []trigger
		if collected != nil {
			triggers = collected[ti]
		} else {
			triggers = s.collectTriggers(t)
		}
		s.stats.TriggersCollected += len(triggers)
		for _, trig := range triggers {
			if s.cancelled() {
				return progressed, truncated, ErrCancelled
			}
			if s.steps >= s.opt.MaxSteps || s.inst.Len() >= s.opt.MaxAtoms {
				return progressed, true, nil
			}
			// Re-check against the current (mutated) instance.
			if !s.opt.Oblivious && s.headSatisfied(t, trig.frontier) {
				continue
			}
			if s.opt.Oblivious {
				fp := fmt.Sprintf("%d|%s", ti, substKey(trig.body, t.BodyVars()))
				if s.fired[fp] {
					continue
				}
				s.fired[fp] = true
			}
			newDepth := trig.depth + 1
			if s.opt.MaxDepth > 0 && newDepth > s.opt.MaxDepth {
				truncated = true
				continue
			}
			s.fire(t, trig.frontier, newDepth)
			progressed = true
		}
	}
	return progressed, truncated, nil
}

type trigger struct {
	frontier term.Subst // bindings of the tgd's frontier (body∩head) variables
	body     term.Subst // full body-variable bindings (oblivious dedup)
	depth    int        // max derivation depth over the body image
}

// collectTriggers snapshots the homomorphisms from t's body into the
// current instance, keeping the frontier bindings and body-image depth.
// It only reads the instance, the depth map and the tgd, so distinct
// calls may run concurrently between mutations.
func (s *state) collectTriggers(t *deps.TGD) []trigger {
	var out []trigger
	frontier := t.FrontierVars()
	bodyVars := t.BodyVars()
	var keyBuf []byte
	hom.Enumerate(t.Body, s.inst, nil, func(h term.Subst) bool {
		// Stop collecting on cancellation: the partial trigger list is
		// never fired, because tgdPass polls before every firing.
		if len(out)%64 == 63 && s.cancelled() {
			return false
		}
		f := term.NewSubst()
		for _, v := range frontier {
			f[v] = h.Resolve(v)
		}
		var full term.Subst
		if s.opt.Oblivious {
			full = term.NewSubst()
			for _, v := range bodyVars {
				full[v] = h.Resolve(v)
			}
		}
		d := 0
		for _, b := range t.Body {
			keyBuf = b.AppendKeyApplied(keyBuf[:0], h)
			if dep, ok := s.depth[string(keyBuf)]; ok && dep > d {
				d = dep
			}
		}
		out = append(out, trigger{frontier: f, body: full, depth: d})
		return true
	})
	return out
}

// collectTriggersParallel collects every tgd's triggers concurrently
// against the current (round-start) instance. Collection is read-only;
// per-tgd trigger order is preserved because each tgd is scanned by a
// single goroutine, so firing order stays deterministic.
func (s *state) collectTriggersParallel() [][]trigger {
	out := make([][]trigger, len(s.set.TGDs))
	workers := s.opt.Parallelism
	if workers > len(s.set.TGDs) {
		workers = len(s.set.TGDs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(s.set.TGDs) {
					return
				}
				out[i] = s.collectTriggers(s.set.TGDs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// headSatisfied reports whether the head already holds under the
// frontier bindings (the restricted-chase applicability test).
func (s *state) headSatisfied(t *deps.TGD, frontier term.Subst) bool {
	return hom.Exists(t.Head, s.inst, frontier)
}

// fire adds the head atoms with fresh nulls for existential variables.
func (s *state) fire(t *deps.TGD, frontier term.Subst, depth int) {
	sub := frontier.Clone()
	for _, z := range t.ExistentialVars() {
		sub[z] = term.FreshNull()
		s.stats.NullsCreated++
	}
	var step *Step
	if s.opt.Trace {
		ti := -1
		for i, cand := range s.set.TGDs {
			if cand == t {
				ti = i
				break
			}
		}
		step = &Step{TGD: ti}
	}
	for _, h := range t.Head {
		a := h.Apply(sub)
		added, err := s.inst.AddReport(a)
		if err != nil {
			panic(fmt.Sprintf("chase: internal error adding %s: %v", a, err))
		}
		if added {
			s.depth[a.Key()] = depth
			if step != nil {
				step.Added = append(step.Added, a)
			}
		}
	}
	if step != nil {
		s.trace = append(s.trace, *step)
	}
	s.steps++
	s.stats.TriggersFired++
}

// egdFixpoint applies egds until none is applicable, identifying terms.
func (s *state) egdFixpoint() error {
	for {
		if s.cancelled() {
			return ErrCancelled
		}
		applied, err := s.egdStep()
		if err != nil {
			return err
		}
		if !applied {
			return nil
		}
	}
}

// soft reports whether t may be renamed by an egd: nulls always, frozen
// query constants when FreezeAsNulls is set.
func (s *state) soft(t term.Term) bool {
	if t.IsNull() {
		return true
	}
	return s.opt.FreezeAsNulls && cq.IsFrozenConst(t)
}

func (s *state) egdStep() (bool, error) {
	for _, e := range s.set.EGDs {
		var a, b term.Term
		found := false
		hom.Enumerate(e.Body, s.inst, nil, func(h term.Subst) bool {
			x, y := h.Resolve(e.X), h.Resolve(e.Y)
			if x == y {
				return true
			}
			a, b = x, y
			found = true
			return false
		})
		if !found {
			continue
		}
		switch {
		case !s.soft(a) && !s.soft(b):
			return false, fmt.Errorf("%w: %s = %s", ErrFailed, a, b)
		case s.soft(a) && !s.soft(b):
			s.replace(a, b)
		case !s.soft(a) && s.soft(b):
			s.replace(b, a)
		default:
			// Both soft: prefer keeping frozen constants over nulls so
			// query heads survive; otherwise keep the smaller name for
			// determinism.
			switch {
			case cq.IsFrozenConst(a) && !cq.IsFrozenConst(b):
				s.replace(b, a)
			case cq.IsFrozenConst(b) && !cq.IsFrozenConst(a):
				s.replace(a, b)
			case a.Compare(b) <= 0:
				s.replace(b, a)
			default:
				s.replace(a, b)
			}
		}
		return true, nil
	}
	return false, nil
}

// replace rewrites old→new everywhere, maintaining merges and depths.
func (s *state) replace(old, new term.Term) {
	s.stats.Merges++
	if s.opt.Trace {
		s.trace = append(s.trace, Step{TGD: -1, Merged: [2]term.Term{old, new}})
	}
	// Atoms mentioning old will be rewritten; carry depths over,
	// keeping the minimum on collision.
	var affected []instance.Atom
	for _, a := range s.inst.AtomsUnordered() {
		for _, t := range a.Args {
			if t == old {
				affected = append(affected, a)
				break
			}
		}
	}
	oldDepths := make(map[string]int, len(affected))
	for _, a := range affected {
		oldDepths[a.Key()] = s.depth[a.Key()]
		delete(s.depth, a.Key())
	}
	s.inst.ReplaceTerm(old, new)
	for _, a := range affected {
		na := a.Clone()
		for i := range na.Args {
			if na.Args[i] == old {
				na.Args[i] = new
			}
		}
		k := na.Key()
		d, had := s.depth[k]
		od := oldDepths[a.Key()]
		if !had || od < d {
			s.depth[k] = od
		}
	}
	// Update the merge substitution: old ↦ new, and re-point anything
	// that previously mapped to old. Iterate the domain in canonical
	// order — the per-key rewrites are independent, but deterministic
	// packages never range over a map raw (semalint: detmap).
	for _, k := range s.merges.Domain() {
		if s.merges[k] == old {
			s.merges[k] = new
		}
	}
	s.merges[old] = new
}

// Satisfies reports whether db ⊨ Σ: every tgd's certain head holds for
// every body match, and no egd is violated. Rigid-constant egd clashes
// count as violations.
func Satisfies(db *instance.Instance, set *deps.Set) bool {
	ok := true
	for _, t := range set.TGDs {
		frontier := t.FrontierVars()
		hom.Enumerate(t.Body, db, nil, func(h term.Subst) bool {
			f := term.NewSubst()
			for _, v := range frontier {
				f[v] = h.Resolve(v)
			}
			if !hom.Exists(t.Head, db, f) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	for _, e := range set.EGDs {
		hom.Enumerate(e.Body, db, nil, func(h term.Subst) bool {
			if h.Resolve(e.X) != h.Resolve(e.Y) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func substKey(s term.Subst, vars []term.Term) string {
	n := 0
	for _, v := range vars {
		n += len(s.Apply(v).Name) + 2
	}
	var b strings.Builder
	b.Grow(n)
	for _, v := range vars {
		img := s.Apply(v)
		b.WriteByte(byte(img.K))
		b.WriteString(img.Name)
		b.WriteByte(0)
	}
	return b.String()
}
