package telemetry

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact /metrics exposition format:
// cumulative le buckets in seconds, _sum/_count, sorted families and
// series, label rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_duration_seconds", "request latency", Labels("op", "x"))
	h.Observe(1000)    // 1µs → bucket 0
	h.Observe(3000000) // 3ms → bucket le=0.004096
	r.CounterFunc("test_hits_total", "cache hits", Labels("cache", "x"), func() int64 { return 42 })
	g := r.Gauge("test_queue_depth", "queue depth", "")
	g.Set(7)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_duration_seconds request latency
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{op="x",le="1e-06"} 1
test_duration_seconds_bucket{op="x",le="2e-06"} 1
test_duration_seconds_bucket{op="x",le="4e-06"} 1
test_duration_seconds_bucket{op="x",le="8e-06"} 1
test_duration_seconds_bucket{op="x",le="1.6e-05"} 1
test_duration_seconds_bucket{op="x",le="3.2e-05"} 1
test_duration_seconds_bucket{op="x",le="6.4e-05"} 1
test_duration_seconds_bucket{op="x",le="0.000128"} 1
test_duration_seconds_bucket{op="x",le="0.000256"} 1
test_duration_seconds_bucket{op="x",le="0.000512"} 1
test_duration_seconds_bucket{op="x",le="0.001024"} 1
test_duration_seconds_bucket{op="x",le="0.002048"} 1
test_duration_seconds_bucket{op="x",le="0.004096"} 2
test_duration_seconds_bucket{op="x",le="0.008192"} 2
test_duration_seconds_bucket{op="x",le="0.016384"} 2
test_duration_seconds_bucket{op="x",le="0.032768"} 2
test_duration_seconds_bucket{op="x",le="0.065536"} 2
test_duration_seconds_bucket{op="x",le="0.131072"} 2
test_duration_seconds_bucket{op="x",le="0.262144"} 2
test_duration_seconds_bucket{op="x",le="0.524288"} 2
test_duration_seconds_bucket{op="x",le="1.048576"} 2
test_duration_seconds_bucket{op="x",le="2.097152"} 2
test_duration_seconds_bucket{op="x",le="4.194304"} 2
test_duration_seconds_bucket{op="x",le="8.388608"} 2
test_duration_seconds_bucket{op="x",le="+Inf"} 2
test_duration_seconds_sum{op="x"} 0.003001
test_duration_seconds_count{op="x"} 2
# HELP test_hits_total cache hits
# TYPE test_hits_total counter
test_hits_total{cache="x"} 42
# HELP test_queue_depth queue depth
# TYPE test_queue_depth gauge
test_queue_depth 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryReuseAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h_seconds", "h", Labels("k", "v"))
	b := r.Histogram("h_seconds", "h", Labels("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same histogram")
	}
	if c := r.Histogram("h_seconds", "h", Labels("k", "w")); c == a {
		t.Fatal("distinct labels must return distinct series")
	}
	if got := Labels("b", "2", "a", "1"); got != `a="1",b="2"` {
		t.Fatalf("Labels not sorted by key: %q", got)
	}
	if got := Labels("k", `a"b\c`); got != `k="a\"b\\c"` {
		t.Fatalf("label escaping: %q", got)
	}
	if Labels() != "" {
		t.Fatal("empty Labels must render empty")
	}
}

// TestConcurrentScrapeAndRegister pins the fix for a fatal concurrent
// map read/write: layer and eval-method series register lazily at
// request time, so a scrape iterating a family's series map while a
// first-time registration inserts into it crashed the process. The
// scrape must render from a snapshot taken under the registry lock.
// Run with -race.
func TestConcurrentScrapeAndRegister(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i == 0 {
				close(started)
			}
			// Bounded label space keeps scrapes cheap; CounterFunc
			// re-assigns its key every iteration, so the family maps
			// are written for the whole lifetime of the scrape loop.
			ls := Labels("k", strconv.Itoa(i%256))
			v := int64(i)
			r.Histogram("race_hist_seconds", "h", ls).Observe(DurationNS(i))
			r.Gauge("race_gauge", "g", ls).Set(v)
			r.CounterFunc("race_counter_total", "c", ls, func() int64 { return v })
		}
	}()
	<-started
	for i := 0; i < 200; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func TestRingBuffer(t *testing.T) {
	ring := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		ring.Add(&TraceEntry{Endpoint: "/decide", Root: &Span{Name: "request"}})
	}
	es := ring.Entries()
	if len(es) != 3 {
		t.Fatalf("len = %d, want 3", len(es))
	}
	for i, want := range []int64{5, 4, 3} {
		if es[i].ID != want {
			t.Fatalf("entry %d has id %d, want %d (newest first)", i, es[i].ID, want)
		}
	}
	empty := NewTraceRing(4)
	if len(empty.Entries()) != 0 {
		t.Fatal("empty ring must return no entries")
	}
}
