package telemetry

import (
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {999, 0}, {1000, 0},
		{1001, 1}, {1999, 1}, {2000, 1},
		{2001, 2}, {4000, 2}, {4001, 3},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bound is the last value of its own bucket; the next
	// nanosecond spills into the following bucket.
	for i := 0; i < HistBuckets; i++ {
		bound := bucketBoundNS(i)
		if got := bucketOf(bound); got != i {
			t.Errorf("bucketOf(bound %d) = %d, want %d", bound, got, i)
		}
		next := i + 1
		if next > HistBuckets {
			next = HistBuckets
		}
		if got := bucketOf(bound + 1); got != next {
			t.Errorf("bucketOf(bound %d + 1) = %d, want %d", bound, got, next)
		}
	}
	if got := bucketOf(bucketBoundNS(HistBuckets-1) + 1); got != HistBuckets {
		t.Errorf("overflow bucket: got %d, want %d", got, HistBuckets)
	}
	if got := bucketOf(int64(1) << 62); got != HistBuckets {
		t.Errorf("huge value bucket: got %d, want %d", got, HistBuckets)
	}
}

// TestConcurrentAgreesWithSerialOracle observes the same deterministic
// value stream once from many goroutines and once serially; the two
// histograms must be bit-identical (no lost counts under -race).
func TestConcurrentAgreesWithSerialOracle(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	values := make([][]DurationNS, workers)
	seed := uint64(0x9e3779b97f4a7c15)
	for w := range values {
		values[w] = make([]DurationNS, perWorker)
		for i := range values[w] {
			// xorshift: deterministic, spread across all buckets.
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			values[w][i] = DurationNS(seed % (1 << 35))
		}
	}

	var concurrent Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(vs []DurationNS) {
			defer wg.Done()
			for _, v := range vs {
				concurrent.Observe(v)
			}
		}(values[w])
	}
	wg.Wait()

	var serial Histogram
	for _, vs := range values {
		for _, v := range vs {
			serial.Observe(v)
		}
	}

	got, want := concurrent.Snapshot(), serial.Snapshot()
	if got != want {
		t.Fatalf("concurrent snapshot diverges from serial oracle:\n got %+v\nwant %+v", got, want)
	}
	if got.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", got.Count(), workers*perWorker)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	// 100 observations inside bucket 1 (1000, 2000]: the interpolated
	// median sits at the bucket midpoint.
	for i := 0; i < 100; i++ {
		h.Observe(1500)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 1500 {
		t.Fatalf("median = %d, want 1500", q)
	}
	if q := s.Quantile(1); q != 2000 {
		t.Fatalf("p100 = %d, want bucket upper bound 2000", q)
	}
	// Overflow observations report the largest finite bound.
	var o Histogram
	o.Observe(DurationNS(bucketBoundNS(HistBuckets-1) + 1))
	if q := o.Snapshot().Quantile(0.99); q != BucketBound(HistBuckets-1) {
		t.Fatalf("overflow quantile = %d, want %d", q, BucketBound(HistBuckets-1))
	}
	if s.SumNS != 150000 {
		t.Fatalf("sum = %d, want 150000", s.SumNS)
	}
}
