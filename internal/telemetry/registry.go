package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is an integer gauge with atomic load/store semantics.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Labels renders label pairs (key, value, key, value, ...) into the
// canonical Prometheus form `k1="v1",k2="v2"`, sorted by key so equal
// label sets always produce equal strings (series identity).
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry.Labels: odd number of arguments")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type series struct {
	labels string
	hist   *Histogram
	gauge  *Gauge
	fn     func() int64
}

type family struct {
	name string
	help string
	kind string
	// series is mutated by lazy registration under the owning
	// registry's lock; there is no sibling mutex, so the guard is
	// qualified: any holder of a Registry.mu may touch it. Scrape paths
	// must snapshot under the lock and render from the copy.
	series map[string]*series `sem:"guardedby(Registry.mu)"`
}

// Registry is a collection of named metric families rendered in
// Prometheus text exposition format. Registration is mutex-guarded
// (get-or-create); the returned Histogram/Gauge handles are lock-free,
// so hot paths register once and observe through the handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family `sem:"guardedby(mu)"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Histogram returns the histogram series name{labels}, creating it on
// first use. labels must come from Labels (or be empty).
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels, hist: &Histogram{}}
		f.series[labels] = s
	}
	return s.hist
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels, gauge: &Gauge{}}
		f.series[labels] = s
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time (for counters maintained elsewhere, e.g. cache stats).
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	f.series[labels] = &series{labels: labels, fn: fn}
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	f.series[labels] = &series{labels: labels, fn: fn}
}

// familySnapshot is a scrape-time copy of one family: name/help/kind
// plus the series pointers sorted by label key. The registry's series
// maps are mutated under r.mu by lazy registration (Histogram et al.),
// so the snapshot must be taken under the lock; the *series values
// themselves are immutable after creation and their reads (histogram
// buckets, gauge loads) are atomic, so rendering from the copy needs no
// lock.
type familySnapshot struct {
	name, help, kind string
	series           []*series
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Families and series are emitted in sorted
// order so the output layout is deterministic given equal counters.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]familySnapshot, 0, len(r.families))
	for _, f := range r.families {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.series[k]
		}
		fams = append(fams, familySnapshot{name: f.name, help: f.help, kind: f.kind, series: ss})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist.Snapshot())
			case s.gauge != nil:
				writeSample(&b, f.name, s.labels, strconv.FormatInt(s.gauge.Load(), 10))
			case s.fn != nil:
				writeSample(&b, f.name, s.labels, strconv.FormatInt(s.fn(), 10))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, s HistogramSnapshot) {
	var cum int64
	for i := 0; i <= HistBuckets; i++ {
		cum += s.Counts[i]
		le := "+Inf"
		if i < HistBuckets {
			le = formatSeconds(bucketBoundNS(i))
		}
		ls := `le="` + le + `"`
		if labels != "" {
			ls = labels + "," + ls
		}
		writeSample(b, name+"_bucket", ls, strconv.FormatInt(cum, 10))
	}
	writeSample(b, name+"_sum", labels, formatSeconds(s.SumNS))
	writeSample(b, name+"_count", labels, strconv.FormatInt(cum, 10))
}

// formatSeconds renders nanoseconds as decimal seconds with the
// shortest exact representation (bucket bounds are exact binary
// multiples of 1µs, so this never rounds).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}
