package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"semacyclic/internal/testutil"
)

func TestSpanTree(t *testing.T) {
	r := NewRecorder("request")
	a := r.Start("decide")
	b := r.Start("layer:core")
	r.Event("cache:miss")
	b.End()
	c := r.Start("layer:complete")
	c.End()
	a.End()
	root := r.Finish()

	want := "request(decide(layer:core(cache:miss),layer:complete))"
	if got := root.Structure(); got != want {
		t.Fatalf("structure = %q, want %q", got, want)
	}
	if root.DurNS < a.DurNS || a.DurNS < b.DurNS {
		t.Fatalf("parent durations must cover children: root=%d a=%d b=%d", root.DurNS, a.DurNS, b.DurNS)
	}
}

func TestSpanEndClosesDanglingChildren(t *testing.T) {
	r := NewRecorder("request")
	outer := r.Start("outer")
	r.Start("inner") // never explicitly ended
	outer.End()      // must close inner too
	s := r.Start("after")
	s.End()
	root := r.Finish()
	if got := root.Structure(); got != "request(outer(inner),after)" {
		t.Fatalf("structure = %q", got)
	}
	// Double End is a no-op.
	outer.End()
	if got := root.Structure(); got != "request(outer(inner),after)" {
		t.Fatalf("structure after double End = %q", got)
	}
}

func TestFinishIdempotentAndNilSafety(t *testing.T) {
	var r *Recorder
	sp := r.Start("x")
	sp.End()
	r.Event("y")
	if r.Finish() != nil {
		t.Fatal("nil recorder Finish must return nil")
	}
	if r.SnapshotJSON() != nil {
		t.Fatal("nil recorder SnapshotJSON must return nil")
	}
	if sp.Structure() != "" {
		t.Fatal("nil span Structure must be empty")
	}

	live := NewRecorder("request")
	live.Start("a")
	first := live.Finish()
	second := live.Finish()
	if first != second {
		t.Fatal("Finish must be idempotent")
	}
	if live.Start("late") != nil {
		t.Fatal("Start after Finish must return nil")
	}
}

func TestSnapshotJSONIsValid(t *testing.T) {
	r := NewRecorder("request")
	sp := r.Start("decide")
	sp.End()
	raw := r.SnapshotJSON() // before Finish: open root reports elapsed
	var got struct {
		Name     string `json:"name"`
		DurNS    int64  `json:"dur_ns"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("SnapshotJSON is not valid JSON: %v\n%s", err, raw)
	}
	if got.Name != "request" || len(got.Children) != 1 || got.Children[0].Name != "decide" {
		t.Fatalf("unexpected tree: %s", raw)
	}
	// Finished trees marshal identically via encoding/json.
	root := r.Finish()
	std, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(std), `"name":"decide"`) {
		t.Fatalf("std marshal missing child: %s", std)
	}
}

// TestNilRecorderSpanHookAllocs pins the untraced span hook at zero
// allocations: threading Trace through the pipeline must cost nothing
// when no recorder is installed.
func TestNilRecorderSpanHookAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start("layer:core")
		r.Event("cache:miss")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder span hook allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkNilRecorderSpanHook(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("layer:core")
		sp.End()
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	r := NewRecorder("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("layer:core")
		sp.End()
	}
}
