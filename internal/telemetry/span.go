package telemetry

import (
	"strconv"
	"strings"
	"sync"
)

// Span is one timed node in a request's span tree. Name and nesting are
// deterministic (they reflect the sequential structure of the pipeline,
// not scheduling); DurNS is wall-clock and therefore not.
type Span struct {
	Name     string     `json:"name"`
	DurNS    DurationNS `json:"dur_ns"`
	Children []*Span    `json:"children,omitempty"`

	rec   *Recorder
	start Stopwatch
	done  bool
}

// Recorder builds one span tree per request. It is nil-safe: every
// method on a nil *Recorder is a no-op and Start returns a nil *Span
// whose End is also a no-op — the untraced path allocates nothing
// (pinned by an allocation guard). A Recorder is safe for use from the
// single goroutine driving a request plus any code it calls
// sequentially; the internal mutex additionally makes interleaved use
// from helper goroutines memory-safe, though span order then follows
// the interleaving.
type Recorder struct {
	mu   sync.Mutex
	root *Span
	open []*Span // stack of started-but-unfinished spans; open[0] == root
}

// NewRecorder starts a recorder whose root span is named rootName.
func NewRecorder(rootName string) *Recorder {
	r := &Recorder{}
	r.root = &Span{Name: rootName, rec: r, start: StartTimer()}
	r.open = append(r.open, r.root)
	return r
}

// Start opens a child span under the innermost open span and returns
// it. On a nil (or already finished) recorder it returns nil.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) == 0 {
		return nil
	}
	parent := r.open[len(r.open)-1]
	s := &Span{Name: name, rec: r, start: StartTimer()}
	parent.Children = append(parent.Children, s)
	r.open = append(r.open, s)
	return s
}

// Event records an instantaneous (zero-duration) child span under the
// innermost open span.
func (r *Recorder) Event(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) == 0 {
		return
	}
	parent := r.open[len(r.open)-1]
	parent.Children = append(parent.Children, &Span{Name: name, done: true})
}

// End closes the span, ending any still-open descendants first (a span
// cannot outlive its parent). Calling End twice, or on nil, is a no-op.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.open) - 1; i >= 0; i-- {
		if r.open[i] != s {
			continue
		}
		for j := len(r.open) - 1; j >= i; j-- {
			r.open[j].close()
		}
		r.open = r.open[:i]
		return
	}
}

// close marks the span finished; caller holds the recorder lock.
func (s *Span) close() {
	if !s.done {
		s.DurNS = s.start.ElapsedNS()
		s.done = true
	}
}

// Finish ends every open span including the root and returns the
// completed tree. Idempotent; returns nil on a nil recorder. After
// Finish the tree is immutable and safe to publish (trace ring, JSON).
func (r *Recorder) Finish() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for j := len(r.open) - 1; j >= 0; j-- {
		r.open[j].close()
	}
	r.open = r.open[:0]
	return r.root
}

// SnapshotJSON renders the current span tree as compact JSON without
// waiting for Finish; still-open spans report their elapsed time so
// far. Returns nil on a nil recorder.
func (r *Recorder) SnapshotJSON() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	appendSpanJSON(&b, r.root)
	return []byte(b.String())
}

func appendSpanJSON(b *strings.Builder, s *Span) {
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote(s.Name))
	b.WriteString(`,"dur_ns":`)
	ns := s.DurNS
	if !s.done {
		ns = s.start.ElapsedNS()
	}
	b.WriteString(strconv.FormatInt(int64(ns), 10))
	if len(s.Children) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range s.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			appendSpanJSON(b, c)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

// SnapshotStructure renders the deterministic structure string of the
// current tree (see Span.Structure) without waiting for Finish.
// Returns "" on a nil recorder.
func (r *Recorder) SnapshotStructure() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.root.Structure()
}

// Structure renders only the deterministic shape of the tree — names
// and nesting, no durations — as "name(child1,child2(grandchild))".
// Two runs of the same request must produce equal Structure strings at
// any parallelism; the determinism tests pin this.
func (s *Span) Structure() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	appendStructure(&b, s)
	return b.String()
}

func appendStructure(b *strings.Builder, s *Span) {
	b.WriteString(s.Name)
	if len(s.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range s.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		appendStructure(b, c)
	}
	b.WriteByte(')')
}
