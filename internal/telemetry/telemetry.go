// Package telemetry is the repository's wall-clock quarantine: the one
// package allowed to call time.Now/time.Since (enforced statically by
// semalint's nowalltime analyzer). Everything the rest of the system
// knows about elapsed wall time flows through the types defined here —
// Stopwatch for measuring, DurationNS for carrying, Histogram for
// aggregating, and Recorder/Span for per-request timelines — so a
// reviewer (or the linter) can audit every site where nondeterministic
// timing enters the system by auditing this package's callers.
//
// Timing data is nondeterministic by construction and must never reach
// a Result field or a DeterministicFingerprint; the statsclass analyzer
// rejects any telemetry-derived field in an obs stats struct that is
// not tagged sem:"nondet".
//
// The tracing hooks are nil-safe throughout: a nil *Recorder produces
// nil *Spans whose methods are no-ops, and that path performs zero
// allocations (pinned by an allocation guard in CI), so the pipeline
// can thread trace points unconditionally without taxing untraced
// decisions.
package telemetry

import "time"

// DurationNS is an elapsed wall-clock duration in nanoseconds. It is a
// distinct type (rather than int64 or time.Duration) so the statsclass
// analyzer can recognize telemetry-derived fields structurally and
// demand the sem:"nondet" classification.
type DurationNS int64

// Duration converts to the stdlib representation.
func (d DurationNS) Duration() time.Duration { return time.Duration(d) }

// Seconds converts to floating-point seconds (Prometheus convention).
func (d DurationNS) Seconds() float64 { return float64(d) / 1e9 }

// Millis converts to floating-point milliseconds.
func (d DurationNS) Millis() float64 { return float64(d) / 1e6 }

// Stopwatch marks a start instant. The zero value is usable but
// anchored at the zero time; call StartTimer for a meaningful origin.
type Stopwatch struct {
	t time.Time
}

// StartTimer starts a stopwatch at the current instant.
func StartTimer() Stopwatch { return Stopwatch{t: time.Now()} }

// ElapsedNS returns the wall time elapsed since the stopwatch started.
func (s Stopwatch) ElapsedNS() DurationNS { return DurationNS(time.Since(s.t).Nanoseconds()) }

// Elapsed returns the elapsed time as a stdlib duration.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t) }
