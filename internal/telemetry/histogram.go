package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of finite histogram buckets. Boundaries are
// fixed powers of two starting at 1µs: bucket i holds observations with
// value ≤ 1µs·2^i, so the finite range spans 1µs … ~8.6s and anything
// slower lands in the overflow (+Inf) bucket. Fixed log-spaced
// boundaries keep Observe lock-free (one atomic add into a fixed array)
// and make every histogram in the process mergeable.
const HistBuckets = 24

// bucketBoundNS returns the inclusive upper bound of finite bucket i in
// nanoseconds.
func bucketBoundNS(i int) int64 { return 1000 << uint(i) }

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) DurationNS { return DurationNS(bucketBoundNS(i)) }

// bucketOf maps an observation to its bucket index (HistBuckets =
// overflow). Non-positive observations land in bucket 0.
func bucketOf(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	b := bits.Len64(uint64(ns-1) / 1000)
	if b > HistBuckets {
		return HistBuckets
	}
	return b
}

// Histogram is a lock-free latency histogram: fixed log-spaced bucket
// boundaries, atomic counters. Concurrent Observe calls never block and
// never lose counts; Snapshot is a racy-but-monotone read (each counter
// individually exact, the set read without a global barrier), which is
// the standard trade for scrape-style consumers.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Int64
	sum    atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d DurationNS) {
	ns := int64(d)
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
type HistogramSnapshot struct {
	// Counts holds per-bucket counts; index HistBuckets is overflow.
	Counts [HistBuckets + 1]int64
	// SumNS is the sum of all observed durations in nanoseconds.
	SumNS int64
}

// Snapshot copies the current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumNS = h.sum.Load()
	return s
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucketed
// counts, interpolating linearly inside the selected bucket. Returns 0
// for an empty snapshot. Values from the overflow bucket are reported
// as the largest finite bound (the histogram cannot resolve further).
func (s HistogramSnapshot) Quantile(q float64) DurationNS {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= HistBuckets {
			return BucketBound(HistBuckets - 1)
		}
		lo := int64(0)
		if i > 0 {
			lo = bucketBoundNS(i - 1)
		}
		hi := bucketBoundNS(i)
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return DurationNS(lo + int64(frac*float64(hi-lo)))
	}
	return BucketBound(HistBuckets - 1)
}
