package telemetry

import "sync"

// TraceEntry is one completed request trace held in a TraceRing.
type TraceEntry struct {
	// ID increases by one per recorded trace (process lifetime).
	ID int64 `json:"id"`
	// Endpoint names the serving endpoint that produced the trace.
	Endpoint string `json:"endpoint"`
	// DurNS is the request's total wall time.
	DurNS DurationNS `json:"dur_ns"`
	// Root is the finished span tree.
	Root *Span `json:"spans"`
}

// TraceRing is a fixed-capacity ring buffer of recent request traces.
// Add overwrites the oldest entry once full; Entries returns a copy,
// newest first. Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*TraceEntry
	next int   // index of the slot Add writes next
	id   int64 // last assigned ID
}

// NewTraceRing returns a ring holding up to n traces (n < 1 → 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*TraceEntry, n)}
}

// Add records a trace, assigning its ID.
func (r *TraceRing) Add(e *TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.id++
	e.ID = r.id
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Entries returns the held traces, newest first.
func (r *TraceRing) Entries() []*TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceEntry, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		e := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if e == nil {
			break
		}
		out = append(out, e)
	}
	return out
}
