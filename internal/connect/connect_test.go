package connect

import (
	"testing"

	"semacyclic/internal/containment"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hypergraph"
)

func TestQueryStaysAcyclicAndConnected(t *testing.T) {
	q := cq.MustParse("q :- R(x,y), S(y,z).")
	c := Query(q)
	if err := c.Validate(); err != nil {
		t.Fatalf("c(q) invalid: %v", err)
	}
	if !hypergraph.IsAcyclic(c.Atoms) {
		t.Error("c(q) should remain acyclic")
	}
	if !c.IsConnected() {
		t.Error("c(q) should be connected")
	}
	// Even for a disconnected input, the shared w connects everything.
	q2 := cq.MustParse("q :- R(x,y), S(u,v).")
	if !Query(q2).IsConnected() {
		t.Error("c(q) of disconnected query should be connected")
	}
}

func TestRightQueryConnectedAndCyclic(t *testing.T) {
	q := cq.MustParse("q :- R(x,y).")
	c := RightQuery(q)
	if err := c.Validate(); err != nil {
		t.Fatalf("c(q') invalid: %v", err)
	}
	if !c.IsConnected() {
		t.Error("c(q') should be connected")
	}
	if hypergraph.IsAcyclic(c.Atoms) {
		t.Error("c(q') carries an aux 3-cycle and must be cyclic")
	}
}

func TestSetClassClosure(t *testing.T) {
	cases := []struct {
		src   string
		check func(*deps.Set) bool
		name  string
	}{
		{"R(x,y) -> S(y,z).", (*deps.Set).IsGuarded, "guarded"},
		{"R(x,y) -> S(y,z).", (*deps.Set).IsLinear, "linear"},
		{"R(x,y) -> S(y,z).", (*deps.Set).IsInclusionDependencies, "inclusion"},
		{"R(x,y) -> S(y).\nS(x) -> T(x,w).", (*deps.Set).IsNonRecursive, "non-recursive"},
		{"T(x,y,z) -> S(y,w).\nR(x,y), P(y,z) -> T(x,y,w).", (*deps.Set).IsSticky, "sticky"},
		{"G(x,y,z), P(y) -> T(x,w).", (*deps.Set).IsGuarded, "guarded multi-body"},
	}
	for _, tc := range cases {
		s := deps.MustParse(tc.src)
		if !tc.check(s) {
			t.Fatalf("%s: source set not in class", tc.name)
		}
		c := Set(s)
		if !tc.check(c) {
			t.Errorf("%s: class not closed under connecting:\n%s", tc.name, c)
		}
		for _, tg := range c.TGDs {
			if !tg.IsBodyConnected() {
				t.Errorf("%s: c(Σ) tgd not body-connected: %s", tc.name, tg)
			}
		}
	}
}

func TestSetHandlesEGDs(t *testing.T) {
	s := deps.MustParse("R(x,y), R(x,z) -> y = z.")
	c := Set(s)
	if len(c.EGDs) != 1 {
		t.Fatalf("c(Σ) = %v", c)
	}
	if c.EGDs[0].Body[0].Pred != "R"+Star {
		t.Errorf("egd body not starred: %s", c.EGDs[0])
	}
}

// TestReductionCorrectness checks q ⊆Σ q' iff c(q) ⊆c(Σ) c(q') on
// positive and negative samples.
func TestReductionCorrectness(t *testing.T) {
	cases := []struct {
		set, q, qp string
		want       bool
	}{
		{"Interest(x,z), Class(y,z) -> Owns(x,y).",
			"q :- Interest(x,z), Class(y,z).",
			"q :- Interest(x,z), Class(y,z), Owns(x,y).", true},
		{"Interest(x,z), Class(y,z) -> Owns(x,y).",
			"q :- Interest(x,z).",
			"q :- Interest(x,z), Class(y,z), Owns(x,y).", false},
		{"A(x) -> B(x,z).", "q :- A(u).", "q :- B(u,v).", true},
		{"A(x) -> B(x,z).", "q :- B(u,v).", "q :- A(u).", false},
	}
	for _, tc := range cases {
		set := deps.MustParse(tc.set)
		q, qp := cq.MustParse(tc.q), cq.MustParse(tc.qp)
		base, err := containment.Contains(q, qp, set, containment.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if base.Holds != tc.want {
			t.Fatalf("premise wrong for %q: %+v", tc.q, base)
		}
		red, err := containment.Contains(Query(q), RightQuery(qp), Set(set), containment.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if red.Holds != tc.want {
			t.Errorf("reduction disagrees for %q: base=%v reduced=%v", tc.q, tc.want, red.Holds)
		}
	}
}
