// Package connect implements the connecting operator of Section 4 of
// the paper: the generic reduction from AcBoolCont(C) to RestCont(C)
// behind every lower bound (Proposition 13). Given Boolean CQs q, q'
// and a set Σ, it produces c(q), c(q') and c(Σ) such that
// q ⊆Σ q' iff c(q) ⊆c(Σ) c(q'), where c(q) stays acyclic and connected,
// c(q') is connected but not semantically acyclic (it carries an aux
// 3-cycle), and c(Σ) is body-connected and stays in every class of the
// paper that q's set belonged to (G, L, ID, NR, S are closed under
// connecting).
package connect

import (
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// Star is the suffix appended to every original predicate (R becomes
// R⋆ in the paper; an ASCII-safe suffix here).
const Star = "_star"

// AuxPred is the fresh binary predicate aux of the construction.
const AuxPred = "aux_conn"

// connVar is the fresh connecting variable w; fresh names keep it
// disjoint from query variables.
func connVar(name string) term.Term { return term.Var("w_conn_" + name) }

func starAtoms(atoms []instance.Atom, w term.Term) []instance.Atom {
	out := make([]instance.Atom, len(atoms))
	for i, a := range atoms {
		args := append(append([]term.Term(nil), a.Args...), w)
		out[i] = instance.NewAtom(a.Pred+Star, args...)
	}
	return out
}

// Query returns c(q) for the left-hand (acyclic) query: every atom
// gains the connecting variable w, plus aux(w,w).
func Query(q *cq.CQ) *cq.CQ {
	w := connVar("l")
	atoms := starAtoms(q.Atoms, w)
	atoms = append(atoms, instance.NewAtom(AuxPred, w, w))
	return &cq.CQ{Name: q.Name, Free: append([]term.Term(nil), q.Free...), Atoms: atoms}
}

// RightQuery returns c(q') for the right-hand query: atoms gain w, and
// the aux 3-cycle aux(w,u), aux(u,v), aux(v,w) makes the result
// connected and not semantically acyclic.
func RightQuery(q *cq.CQ) *cq.CQ {
	w, u, v := connVar("r"), connVar("r_u"), connVar("r_v")
	atoms := starAtoms(q.Atoms, w)
	atoms = append(atoms,
		instance.NewAtom(AuxPred, w, u),
		instance.NewAtom(AuxPred, u, v),
		instance.NewAtom(AuxPred, v, w),
	)
	return &cq.CQ{Name: q.Name, Free: append([]term.Term(nil), q.Free...), Atoms: atoms}
}

// Set returns c(Σ): every atom of every tgd gains a per-tgd fresh
// connecting variable (shared between body and head, making bodies
// connected). EGDs are passed through starred as well.
func Set(s *deps.Set) *deps.Set {
	out := &deps.Set{}
	for i, t := range s.TGDs {
		w := connVar(vname("t", i))
		out.TGDs = append(out.TGDs, deps.MustTGD(starAtoms(t.Body, w), starAtoms(t.Head, w)))
	}
	for i, e := range s.EGDs {
		w := connVar(vname("e", i))
		out.EGDs = append(out.EGDs, deps.MustEGD(starAtoms(e.Body, w), e.X, e.Y))
	}
	return out
}

func vname(prefix string, i int) string {
	return prefix + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
}
