package rewrite

import (
	"fmt"
	"strings"
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hom"
	"semacyclic/internal/term"
)

func TestRejectsEGDs(t *testing.T) {
	set := deps.MustParse("R(x,y), R(x,z) -> y = z.")
	if _, err := Rewrite(cq.MustParse("q :- R(x,y)."), set, Options{}); err == nil {
		t.Error("egd set accepted")
	}
}

func TestLinearRewriteBasic(t *testing.T) {
	set := deps.MustParse("R(x,y) -> S(y).")
	q := cq.MustParse("q :- S(u).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("tiny rewriting should complete")
	}
	if len(res.UCQ.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %v", res.UCQ)
	}
	// The rewritten disjunct is R(_, u)-shaped.
	var found bool
	for _, d := range res.UCQ.Disjuncts {
		if d.Size() == 1 && d.Atoms[0].Pred == "R" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing R-disjunct:\n%s", res.UCQ)
	}
}

func TestRewriteChainTwoSteps(t *testing.T) {
	set := deps.MustParse("A(x) -> B(x).\nB(x) -> C(x).")
	q := cq.MustParse("q(x) :- C(x).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[string]bool)
	for _, d := range res.UCQ.Disjuncts {
		if d.Size() == 1 {
			preds[d.Atoms[0].Pred] = true
		}
	}
	for _, p := range []string{"A", "B", "C"} {
		if !preds[p] {
			t.Errorf("missing %s-disjunct:\n%s", p, res.UCQ)
		}
	}
}

func TestExistentialBlocksOutsideVariables(t *testing.T) {
	set := deps.MustParse("R(x) -> S(x,z).")
	// v occurs outside the piece: rewriting of S(u,v) alone is unsound.
	q := cq.MustParse("q :- S(u,v), T(v).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UCQ.Disjuncts) != 1 {
		t.Errorf("unsound rewriting produced:\n%s", res.UCQ)
	}
	// With v local to the piece the rewriting is sound.
	q2 := cq.MustParse("q :- S(u,v).")
	res2, err := Rewrite(q2, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.UCQ.Disjuncts) != 2 {
		t.Errorf("sound rewriting missing:\n%s", res2.UCQ)
	}
}

func TestExistentialBlocksConstantsAndAnswerVars(t *testing.T) {
	set := deps.MustParse("R(x) -> S(x,z).")
	// Existential position unified with a constant: unsound.
	q := cq.MustParse("q :- S(u,'a').")
	res, _ := Rewrite(q, set, Options{})
	if len(res.UCQ.Disjuncts) != 1 {
		t.Errorf("constant unification accepted:\n%s", res.UCQ)
	}
	// Existential position unified with an answer variable: unsound.
	q2 := cq.MustParse("q(v) :- S(u,v).")
	res2, _ := Rewrite(q2, set, Options{})
	if len(res2.UCQ.Disjuncts) != 1 {
		t.Errorf("answer-variable unification accepted:\n%s", res2.UCQ)
	}
}

func TestExistentialBlocksMergingTwoExistentials(t *testing.T) {
	set := deps.MustParse("P(x) -> S(x,z,w).")
	// S(u,v,v) needs z=w: two distinct nulls can never coincide.
	q := cq.MustParse("q :- S(u,v,v).")
	res, _ := Rewrite(q, set, Options{})
	if len(res.UCQ.Disjuncts) != 1 {
		t.Errorf("merged existentials accepted:\n%s", res.UCQ)
	}
	// S(u,v,w) with v,w local: fine.
	q2 := cq.MustParse("q :- S(u,v,w).")
	res2, _ := Rewrite(q2, set, Options{})
	if len(res2.UCQ.Disjuncts) != 2 {
		t.Errorf("distinct existentials rejected:\n%s", res2.UCQ)
	}
}

func TestExistentialBlocksFrontierMerge(t *testing.T) {
	set := deps.MustParse("P(x) -> S(x,z).")
	// S(u,u) needs x=z: the frontier value cannot equal the fresh null.
	q := cq.MustParse("q :- S(u,u).")
	res, _ := Rewrite(q, set, Options{})
	if len(res.UCQ.Disjuncts) != 1 {
		t.Errorf("frontier/existential merge accepted:\n%s", res.UCQ)
	}
}

func TestTwoAtomsIntoOneHeadAtom(t *testing.T) {
	// Factorization: both query atoms map onto the single head atom.
	set := deps.MustParse("P(x) -> S(x,z).")
	q := cq.MustParse("q :- S(u,v), S(w,v).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expect a disjunct P(u') obtained by unifying both S-atoms (u=w,
	// v=z local) and replacing with the body.
	var foundP bool
	for _, d := range res.UCQ.Disjuncts {
		if d.Size() == 1 && d.Atoms[0].Pred == "P" {
			foundP = true
		}
	}
	if !foundP {
		t.Errorf("factorized rewriting missing:\n%s", res.UCQ)
	}
}

func TestMultiHeadPiece(t *testing.T) {
	set := deps.MustParse("R(x) -> S(x,z), T(z).")
	// Both atoms rewrite together: z shared across the head.
	q := cq.MustParse("q :- S(u,v), T(v).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var foundR bool
	for _, d := range res.UCQ.Disjuncts {
		if d.Size() == 1 && d.Atoms[0].Pred == "R" {
			foundR = true
		}
	}
	if !foundR {
		t.Errorf("multi-head piece rewriting missing:\n%s", res.UCQ)
	}
}

func TestExample1Rewriting(t *testing.T) {
	set := deps.MustParse("Interest(x,z), Class(y,z) -> Owns(x,y).")
	q := cq.MustParse("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
	res, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The rewriting must witness that q' = Interest∧Class is contained
	// in q under Σ: some disjunct maps into D_q' with the frozen head.
	qp := cq.MustParse("q(x,y) :- Interest(x,z), Class(y,z).")
	db, frozen := qp.Freeze()
	matched := false
	for _, d := range res.UCQ.Disjuncts {
		if hom.HasTuple(d, db, frozen) {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("rewriting does not witness q' ⊆Σ q:\n%s", res.UCQ)
	}
}

func TestBudgetTruncation(t *testing.T) {
	set := deps.MustParse("A(x) -> B(x).\nB(x) -> C(x).")
	q := cq.MustParse("q(x) :- C(x).")
	res, err := Rewrite(q, set, Options{MaxDisjuncts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("truncated rewriting reported complete")
	}
	if len(res.UCQ.Disjuncts) > 2 {
		t.Errorf("budget exceeded: %d disjuncts", len(res.UCQ.Disjuncts))
	}
}

func TestHeightBound(t *testing.T) {
	set := deps.MustParse("R(x,y) -> S(y,z).")
	q := cq.MustParse("q :- S(u,v).")
	// p = 2 predicates, a = 2, |q| = 1: 2·(2·1+1)^2 = 18.
	if got := HeightBound(q, set); got != 18 {
		t.Errorf("HeightBound = %d, want 18", got)
	}
}

// example3Set builds the sticky set of Example 3 for width n: predicates
// P0..Pn of arity n+2 over variables x1..xn and the two tail positions.
func example3Set(n int) (*deps.Set, *cq.CQ) {
	var lines []string
	for i := 1; i <= n; i++ {
		mk := func(subst string) string {
			args := make([]string, n+2)
			for j := 1; j <= n; j++ {
				args[j-1] = fmt.Sprintf("x%d", j)
			}
			args[i-1] = subst
			args[n] = "Z"
			args[n+1] = "O"
			return strings.Join(args, ",")
		}
		lines = append(lines, fmt.Sprintf("P%d(%s), P%d(%s) -> P%d(%s).", i, mk("Z"), i, mk("O"), i-1, mk("Z")))
	}
	set := deps.MustParse(strings.Join(lines, "\n"))
	args := make([]string, n+2)
	for j := 0; j < n+1; j++ {
		args[j] = "0"
	}
	args[n+1] = "1"
	q := cq.MustParse(fmt.Sprintf("q :- P0(%s).", strings.Join(args, ",")))
	return set, q
}

// TestExample3ExponentialRewriting replays Example 3: the disjunct over
// P_n alone has exactly 2^n atoms.
func TestExample3ExponentialRewriting(t *testing.T) {
	for n := 1; n <= 3; n++ {
		set, q := example3Set(n)
		if !set.IsSticky() {
			t.Fatalf("n=%d: Example 3 set should be sticky", n)
		}
		res, err := Rewrite(q, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("n=%d: rewriting incomplete", n)
		}
		best := 0
		for _, d := range res.UCQ.Disjuncts {
			onlyPn := true
			for _, a := range d.Atoms {
				if a.Pred != fmt.Sprintf("P%d", n) {
					onlyPn = false
					break
				}
			}
			if onlyPn && d.Size() > best {
				best = d.Size()
			}
		}
		want := 1 << n
		if best != want {
			t.Errorf("n=%d: max P%d-only disjunct = %d atoms, want %d\n", n, n, best, want)
		}
	}
}

// TestRewritingAgreesWithChaseContainment cross-checks the two
// containment procedures on non-recursive sets: for q' ⊆Σ q, the chase
// of q' must satisfy q iff some rewriting disjunct maps into D_q'.
func TestRewritingAgreesWithChaseContainment(t *testing.T) {
	cases := []struct {
		set   string
		q, qp string
	}{
		{"R(x,y) -> S(y).", "q :- S(u).", "q :- R(a,b)."},
		{"R(x,y) -> S(y).", "q :- S(u).", "q :- T(a)."},
		{"A(x) -> B(x,z).\nB(x,y) -> C(y).", "q :- C(u).", "q :- A(a)."},
		{"A(x) -> B(x,z).\nB(x,y) -> C(y).", "q :- C(u).", "q :- B(a,b)."},
		{"A(x) -> B(x,z).\nB(x,y) -> C(y).", "q(u) :- C(u).", "q(u) :- C(u)."},
		{"Interest(x,z), Class(y,z) -> Owns(x,y).",
			"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).",
			"q(x,y) :- Interest(x,z), Class(y,z)."},
		{"Interest(x,z), Class(y,z) -> Owns(x,y).",
			"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).",
			"q(x,y) :- Interest(x,z), Class(w,z), Owns(x,y)."},
	}
	for _, tc := range cases {
		set := deps.MustParse(tc.set)
		q := cq.MustParse(tc.q)
		qp := cq.MustParse(tc.qp)

		// Chase-based: c(x̄') ∈ q(chase(q',Σ)).
		res, frozen, err := chase.Query(qp, set, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("chase incomplete for %s", tc.set)
		}
		chaseSays := hom.HasTuple(q, res.Instance, frozen)

		// Rewriting-based: some disjunct maps into D_q'.
		rw, err := Rewrite(q, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		db, frozenQP := qp.Freeze()
		rewriteSays := false
		for _, d := range rw.UCQ.Disjuncts {
			if hom.HasTuple(d, db, frozenQP) {
				rewriteSays = true
				break
			}
		}
		if chaseSays != rewriteSays {
			t.Errorf("set=%q q=%q q'=%q: chase=%v rewrite=%v\nUCQ:\n%s",
				tc.set, tc.q, tc.qp, chaseSays, rewriteSays, rw.UCQ)
		}
	}
}

// TestRewritingSoundness: every disjunct must be contained in q under Σ
// (checked by chasing the disjunct and finding q).
func TestRewritingSoundness(t *testing.T) {
	sets := []string{
		"R(x,y) -> S(y,z).\nS(x,y) -> T(x).",
		"A(x), E(x,y) -> B(y).\nB(x) -> A(x).",
		"P(x), P(y) -> R(x,y).",
	}
	queries := []string{
		"q :- T(u), S(u,v).",
		"q(u) :- B(u), A(u).",
		"q :- R(u,v), P(v).",
	}
	for i, src := range sets {
		set := deps.MustParse(src)
		q := cq.MustParse(queries[i])
		rw, err := Rewrite(q, set, Options{MaxDisjuncts: 200})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range rw.UCQ.Disjuncts {
			// All three sets have terminating chases (full or
			// non-recursive), so no depth cap is needed.
			res, frozen, err := chase.Query(d, set, chase.Options{MaxSteps: 20000})
			if err != nil {
				t.Fatal(err)
			}
			if !hom.HasTuple(q, res.Instance, frozen) {
				t.Errorf("set %d: disjunct %s not contained in q under Σ", i, d)
			}
		}
	}
}

func TestFreeVariablesStableAcrossDisjuncts(t *testing.T) {
	set := deps.MustParse("R(x,y) -> S(y).")
	q := cq.MustParse("q(u) :- S(u), P(u).")
	rw, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rw.UCQ.Disjuncts {
		if len(d.Free) != 1 || d.Free[0] != term.Var("u") {
			t.Errorf("free vars drifted: %s", d)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("invalid disjunct %s: %v", d, err)
		}
	}
}

// Constants in tgd heads interact with unification: a query constant
// must match the head constant exactly.
func TestRewriteWithConstantsInHead(t *testing.T) {
	set := deps.MustParse("Person(x) -> Citizen(x, 'somewhere').")
	q := cq.MustParse("q(x) :- Citizen(x, 'somewhere').")
	rw, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundPerson := false
	for _, d := range rw.UCQ.Disjuncts {
		if d.Size() == 1 && d.Atoms[0].Pred == "Person" {
			foundPerson = true
		}
	}
	if !foundPerson {
		t.Errorf("constant-matching rewriting missing:\n%s", rw.UCQ)
	}
	// A mismatched constant blocks the rewriting.
	q2 := cq.MustParse("q(x) :- Citizen(x, 'elsewhere').")
	rw2, err := Rewrite(q2, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rw2.UCQ.Disjuncts) != 1 {
		t.Errorf("mismatched constant rewritten:\n%s", rw2.UCQ)
	}
}

// A variable in the query unifying with a head constant is sound: the
// rewriting instantiates it.
func TestRewriteVariableAgainstHeadConstant(t *testing.T) {
	set := deps.MustParse("Person(x) -> Citizen(x, 'somewhere').")
	q := cq.MustParse("q(x) :- Citizen(x, w).")
	rw, err := Rewrite(q, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rw.UCQ.Disjuncts {
		if d.Size() == 1 && d.Atoms[0].Pred == "Person" {
			found = true
		}
	}
	if !found {
		t.Errorf("variable-to-constant rewriting missing:\n%s", rw.UCQ)
	}
}

func TestHeightBoundClamps(t *testing.T) {
	// A 12-ary predicate would overflow a naive p·(a·|q|+1)^a.
	args := make([]string, 12)
	for i := range args {
		args[i] = fmt.Sprintf("x%d", i)
	}
	wide := fmt.Sprintf("W(%s)", strings.Join(args, ","))
	set := deps.MustParse(fmt.Sprintf("%s -> V(x0).", wide))
	q := cq.MustParse(fmt.Sprintf("q :- %s, %s, %s.", wide, wide, wide))
	got := HeightBound(q, set)
	if got <= 0 || got > 1<<30 {
		t.Errorf("HeightBound = %d, want clamped positive", got)
	}
}
