// Package rewrite implements UCQ rewriting of conjunctive queries under
// tgds (Definition 2 of the paper): backward piece-rewriting in the
// style of XRewrite [Gottlob–Orsi–Pieris, TODS 2014], the technique the
// paper leans on for non-recursive and sticky sets of tgds
// (Propositions 17 and 19).
//
// A rewriting step undoes one chase application: a nonempty subset S of
// a query's atoms is unified with (a subset of) a tgd's head atoms by a
// most general unifier satisfying the piece conditions on existential
// variables, and S is replaced by the tgd's body. The closure of q
// under such steps is a UCQ Q with: q' ⊆Σ q iff c(x̄) ∈ Q(D_q').
// Answer variables are treated as rigid (frozen) during unification,
// the standard convention that keeps the head tuple stable across
// disjuncts.
package rewrite

import (
	"errors"
	"fmt"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hom"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// ErrCancelled reports a rewriting aborted via Options.Cancel.
var ErrCancelled = errors.New("rewrite: cancelled")

// Options bounds the rewriting closure. The zero value picks defaults
// that comfortably cover the f_C(q,Σ) bounds on laptop-scale inputs.
type Options struct {
	// MaxDisjuncts caps the number of generated CQs (default 100000).
	MaxDisjuncts int
	// MaxAtomsPerCQ discards rewritings larger than this (default: no
	// limit). The paper's small-query property never needs disjuncts
	// above f_C(q,Σ); callers may pass that bound to prune.
	MaxAtomsPerCQ int
	// MaxRounds caps the BFS depth (default 10000 — effectively the
	// disjunct cap governs).
	MaxRounds int
	// NoCoreReduction disables core-reducing generated disjuncts. Only
	// for ablation studies: without reduction the closure diverges on
	// recursive sticky sets (see the Rewrite implementation comment)
	// and the UCQ carries redundant disjuncts.
	NoCoreReduction bool
	// Cancel, when non-nil, aborts the closure as soon as the channel
	// is closed (or receives); Rewrite then returns ErrCancelled. The
	// channel is polled once per (disjunct, tgd) rewriting step, so a
	// diverging sticky closure stops within one piece-rewriting step.
	Cancel <-chan struct{}
}

// cancelled polls the cancel channel without blocking.
func (o Options) cancelled() bool {
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

func (o Options) withDefaults() Options {
	if o.MaxDisjuncts <= 0 {
		o.MaxDisjuncts = 100000
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10000
	}
	return o
}

// Result is a computed rewriting.
type Result struct {
	// UCQ is the rewriting; the first disjunct is (a canonical copy of)
	// the input query itself.
	UCQ *cq.UCQ
	// Complete reports that the closure was exhausted within budget.
	// When false, the rewriting is still sound (every disjunct is
	// Σ-entailed) but may be missing disjuncts.
	Complete bool
	// Rounds is the number of BFS levels explored.
	Rounds int
}

// Rewrite computes the UCQ rewriting of q under the tgds of the set.
// Sets containing egds are rejected: the paper shows keys are not UCQ
// rewritable (Section 6.1).
func Rewrite(q *cq.CQ, set *deps.Set, opt Options) (*Result, error) {
	if len(set.EGDs) > 0 {
		return nil, fmt.Errorf("rewrite: egds are not UCQ rewritable")
	}
	opt = opt.withDefaults()

	start := q.DedupAtoms()
	if !opt.NoCoreReduction {
		start = hom.Core(start)
	}
	seen := map[string]*cq.CQ{start.CanonicalKey(): start}
	frontier := []*cq.CQ{start}
	order := []*cq.CQ{start}
	complete := true
	rounds := 0

	for len(frontier) > 0 && rounds < opt.MaxRounds {
		rounds++
		var next []*cq.CQ
		for _, p := range frontier {
			for _, t := range set.TGDs {
				if opt.cancelled() {
					return nil, ErrCancelled
				}
				for _, r := range rewriteStep(p, t) {
					if opt.MaxAtomsPerCQ > 0 && r.Size() > opt.MaxAtomsPerCQ {
						complete = false
						continue
					}
					// Core-reduce: each disjunct is replaced by its
					// (equivalent) core. Besides shrinking the UCQ this
					// is what makes the closure terminate on recursive
					// sticky sets, where raw piece-rewriting keeps
					// producing redundant inflations of earlier
					// disjuncts.
					if !opt.NoCoreReduction {
						r = hom.Core(r)
					}
					k := r.CanonicalKey()
					if _, ok := seen[k]; ok {
						continue
					}
					if len(seen) >= opt.MaxDisjuncts {
						complete = false
						continue
					}
					seen[k] = r
					next = append(next, r)
					order = append(order, r)
				}
			}
		}
		frontier = next
	}
	if len(frontier) > 0 {
		complete = false
	}
	ucq, err := cq.NewUCQ(order...)
	if err != nil {
		return nil, fmt.Errorf("rewrite: internal: %w", err)
	}
	return &Result{UCQ: ucq, Complete: complete, Rounds: rounds}, nil
}

// rewriteStep returns every sound one-step rewriting of p with tgd t.
func rewriteStep(p *cq.CQ, t *deps.TGD) []*cq.CQ {
	t = t.RenameApart()

	// Freeze answer variables: rigid during unification.
	freeze := term.NewSubst()
	thaw := term.NewSubst()
	for _, x := range p.Free {
		fc := cq.FrozenConst(x)
		freeze[x] = fc
		thaw[fc] = x
	}
	frozen := p.ApplySubst(freeze)

	existential := t.ExistentialVars()
	frontier := t.FrontierVars()
	pVars := varSet(frozen.Atoms)

	var out []*cq.CQ

	// Enumerate assignments: each atom of p is either kept or mapped to
	// a head atom of t with matching predicate and arity.
	assign := make([]int, len(frozen.Atoms)) // -1 = keep, else head index
	var rec func(i int, any bool)
	rec = func(i int, any bool) {
		if i == len(frozen.Atoms) {
			if !any {
				return
			}
			if r := applyPiece(frozen, t, assign, existential, frontier, pVars, thaw, p.Free); r != nil {
				out = append(out, r)
			}
			return
		}
		assign[i] = -1
		rec(i+1, any)
		for j, h := range t.Head {
			if h.Pred == frozen.Atoms[i].Pred && len(h.Args) == len(frozen.Atoms[i].Args) {
				assign[i] = j
				rec(i+1, true)
			}
		}
		assign[i] = -1
	}
	rec(0, false)
	return out
}

// applyPiece attempts the piece unification described by assign and, on
// success, returns the rewritten query.
func applyPiece(frozen *cq.CQ, t *deps.TGD, assign []int,
	existential, frontierVars []term.Term, pVars map[term.Term]bool,
	thaw term.Subst, free []term.Term) *cq.CQ {

	// Collect the unification problem.
	var left, right []term.Term
	inS := make([]bool, len(frozen.Atoms))
	for i, a := range frozen.Atoms {
		if assign[i] < 0 {
			continue
		}
		inS[i] = true
		left = append(left, a.Args...)
		right = append(right, t.Head[assign[i]].Args...)
	}
	mu, err := term.Unify(left, right, nil)
	if err != nil {
		return nil
	}

	// Variables of p occurring outside S (they must keep their values,
	// so they may not be equated with an existential variable).
	outside := make(map[term.Term]bool)
	for i, a := range frozen.Atoms {
		if inS[i] {
			continue
		}
		for _, v := range a.Vars() {
			outside[v] = true
		}
	}

	// Piece conditions on each existential variable z of t: its
	// equivalence class must contain nothing but z itself and variables
	// of p that occur only inside S.
	for _, z := range existential {
		rz := mu.Resolve(z)
		if rz.IsConst() {
			return nil // null cannot equal a constant (incl. frozen answer vars)
		}
		if rz != z {
			// rz is a variable: it must be an S-only p-variable, not a
			// frontier variable, not another existential.
			if !pVars[rz] || outside[rz] {
				return nil
			}
		}
		// No two distinct existential variables may coincide, and no
		// frontier variable may land in z's class.
		for _, z2 := range existential {
			if z2 != z && mu.Resolve(z2) == rz {
				return nil
			}
		}
		for _, f := range frontierVars {
			if mu.Resolve(f) == rz {
				return nil
			}
		}
		// No outside-S p-variable may resolve into z's class.
		//semalint:allow detmap(existence check; any hit rejects identically)
		for v := range outside {
			if mu.Resolve(v) == rz {
				return nil
			}
		}
	}

	// Build the rewriting: μ(body(t)) ∪ μ(p \ S), then thaw answer vars.
	var atoms []instance.Atom
	for _, b := range t.Body {
		atoms = append(atoms, b.Apply(mu).Apply(thaw))
	}
	for i, a := range frozen.Atoms {
		if !inS[i] {
			atoms = append(atoms, a.Apply(mu).Apply(thaw))
		}
	}
	r := &cq.CQ{Name: frozen.Name, Free: append([]term.Term(nil), free...), Atoms: atoms}
	r = r.DedupAtoms()
	if err := r.Validate(); err != nil {
		return nil // defensive: a free variable vanished (cannot happen)
	}
	return r
}

func varSet(atoms []instance.Atom) map[term.Term]bool {
	s := make(map[term.Term]bool)
	for _, a := range atoms {
		for _, v := range a.Vars() {
			s[v] = true
		}
	}
	return s
}

// HeightBound returns f_C(q,Σ) = p_{q,Σ} · (a_{q,Σ}·|q| + 1)^{a_{q,Σ}},
// the bound on the maximal disjunct size of UCQ rewritings for
// non-recursive and sticky sets (Propositions 17 and 19).
func HeightBound(q *cq.CQ, set *deps.Set) int {
	sch, err := q.Schema().Union(set.Schema())
	if err != nil {
		// Inconsistent arities between query and set: fall back to the
		// set's schema, which dominates rewriting output.
		sch = set.Schema()
	}
	p := sch.Len()
	a := sch.MaxArity()
	if a == 0 {
		return p
	}
	// Clamp: the bound is only used to size budgets; beyond ~10^9 the
	// exact value is meaningless and the multiplication could overflow.
	const clamp = 1 << 30
	bound := p
	base := a*q.Size() + 1
	for i := 0; i < a; i++ {
		if bound > clamp/base {
			return clamp
		}
		bound *= base
	}
	return bound
}
