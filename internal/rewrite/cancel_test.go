package rewrite

import (
	"errors"
	"testing"
	"time"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
)

// A pre-closed cancel channel aborts the rewriting before the BFS
// expands anything.
func TestCancelPreClosed(t *testing.T) {
	set := deps.MustParse("T(x,y,z) -> S(y,w).\nR(x,y), P(y,z) -> T(x,y,w).")
	q := cq.MustParse("q :- S(u,v).")
	ch := make(chan struct{})
	close(ch)
	_, err := Rewrite(q, set, Options{Cancel: ch})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// Cancelling mid-rewriting aborts within one rewrite step. The sticky
// set's rewriting is worst-case exponential, so without the cancel this
// workload runs far longer than the test budget.
func TestCancelMidRewrite(t *testing.T) {
	// The Example 3 family: disjunct count explodes with n.
	src := ""
	for i := 1; i <= 12; i++ {
		src += "P" + itoa(i) + "(x), P" + itoa(i) + "(y) -> P" + itoa(i-1) + "(x)\n"
	}
	set, err := deps.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParse("q :- P0(u).")
	ch := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(ch)
	}()
	start := time.Now()
	_, rerr := Rewrite(q, set, Options{MaxDisjuncts: 1 << 30, Cancel: ch})
	wall := time.Since(start)
	if !errors.Is(rerr, ErrCancelled) {
		// The workload finishing under 20ms is possible on a fast
		// machine; only a non-cancel error is a failure then.
		if rerr != nil {
			t.Fatalf("err = %v, want ErrCancelled or nil", rerr)
		}
		t.Skip("rewriting completed before the cancel fired")
	}
	if wall > 10*time.Second {
		t.Fatalf("cancellation took %v", wall)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
