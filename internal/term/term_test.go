package term

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Constant: "constant", Null: "null", Variable: "variable", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndPredicates(t *testing.T) {
	c := Const("a")
	n := NullTerm("z1")
	v := Var("x")
	if !c.IsConst() || c.IsNull() || c.IsVar() {
		t.Errorf("Const predicates wrong: %+v", c)
	}
	if !n.IsNull() || n.IsConst() || n.IsVar() {
		t.Errorf("Null predicates wrong: %+v", n)
	}
	if !v.IsVar() || v.IsConst() || v.IsNull() {
		t.Errorf("Var predicates wrong: %+v", v)
	}
}

func TestTermString(t *testing.T) {
	if got := Const("a").String(); got != "a" {
		t.Errorf("const string = %q", got)
	}
	if got := NullTerm("z").String(); got != "_:z" {
		t.Errorf("null string = %q", got)
	}
	if got := Var("x").String(); got != "?x" {
		t.Errorf("var string = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ts := []Term{Const("a"), Const("b"), NullTerm("a"), Var("a"), Var("b")}
	for i := range ts {
		for j := range ts {
			c := ts[i].Compare(ts[j])
			switch {
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v)=%d, want 0", ts[i], ts[j], c)
			case i < j && c >= 0:
				t.Errorf("Compare(%v,%v)=%d, want <0", ts[i], ts[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v,%v)=%d, want >0", ts[i], ts[j], c)
			}
		}
	}
}

func TestFreshNullDistinct(t *testing.T) {
	seen := make(map[Term]bool)
	for i := 0; i < 1000; i++ {
		n := FreshNull()
		if !n.IsNull() {
			t.Fatalf("FreshNull returned %v", n)
		}
		if seen[n] {
			t.Fatalf("duplicate fresh null %v", n)
		}
		seen[n] = true
	}
}

func TestFreshVarDistinctFromNulls(t *testing.T) {
	v := FreshVar()
	if !v.IsVar() {
		t.Fatalf("FreshVar returned %v", v)
	}
	n := FreshNull()
	if v == n {
		t.Fatalf("fresh var equals fresh null: %v", v)
	}
}

func TestSubstApplyResolve(t *testing.T) {
	s := Subst{Var("x"): Var("y"), Var("y"): Const("a")}
	if got := s.Apply(Var("x")); got != Var("y") {
		t.Errorf("Apply(x) = %v, want ?y", got)
	}
	if got := s.Resolve(Var("x")); got != Const("a") {
		t.Errorf("Resolve(x) = %v, want a", got)
	}
	if got := s.Apply(Const("c")); got != Const("c") {
		t.Errorf("Apply on constant changed it: %v", got)
	}
	if got := s.Apply(Var("unbound")); got != Var("unbound") {
		t.Errorf("Apply on unbound changed it: %v", got)
	}
}

func TestSubstResolveCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cyclic substitution")
		}
	}()
	s := Subst{Var("x"): Var("y"), Var("y"): Var("x")}
	s.Resolve(Var("x"))
}

func TestSubstTupleHelpers(t *testing.T) {
	s := Subst{Var("x"): Const("a")}
	in := []Term{Var("x"), Const("b"), Var("z")}
	got := s.ApplyTuple(in)
	want := []Term{Const("a"), Const("b"), Var("z")}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ApplyTuple[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &in[0] == &got[0] {
		t.Error("ApplyTuple must return a fresh slice")
	}
	got2 := s.ResolveTuple(in)
	for i := range want {
		if got2[i] != want[i] {
			t.Errorf("ResolveTuple[%d] = %v, want %v", i, got2[i], want[i])
		}
	}
}

func TestSubstCloneIndependent(t *testing.T) {
	s := Subst{Var("x"): Const("a")}
	c := s.Clone()
	c[Var("y")] = Const("b")
	if _, ok := s[Var("y")]; ok {
		t.Error("Clone shares storage with original")
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{Var("x"): Var("y")}
	u := Subst{Var("y"): Const("a"), Var("z"): Const("b")}
	c := s.Compose(u)
	if got := c.Apply(Var("x")); got != Const("a") {
		t.Errorf("compose x = %v, want a", got)
	}
	if got := c.Apply(Var("z")); got != Const("b") {
		t.Errorf("compose z = %v, want b", got)
	}
}

func TestSubstDomainSortedAndString(t *testing.T) {
	s := Subst{Var("y"): Const("b"), Var("x"): Const("a")}
	d := s.Domain()
	if len(d) != 2 || d[0] != Var("x") || d[1] != Var("y") {
		t.Errorf("Domain = %v", d)
	}
	if got := s.String(); got != "{?x↦a, ?y↦b}" {
		t.Errorf("String = %q", got)
	}
}

func TestUnifyBasics(t *testing.T) {
	x, y := Var("x"), Var("y")
	a, b := Const("a"), Const("b")

	s, err := Unify([]Term{x, a}, []Term{b, y}, nil)
	if err != nil {
		t.Fatalf("unify failed: %v", err)
	}
	if s.Resolve(x) != b || s.Resolve(y) != a {
		t.Errorf("unify result %v", s)
	}

	if _, err := Unify([]Term{a}, []Term{b}, nil); err == nil {
		t.Error("expected constant clash")
	}
	if _, err := Unify([]Term{a}, []Term{a, b}, nil); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestUnifyTransitiveClash(t *testing.T) {
	x := Var("x")
	// x=a and then x=b must clash through the shared variable.
	if _, err := Unify([]Term{x, x}, []Term{Const("a"), Const("b")}, nil); err == nil {
		t.Error("expected clash via shared variable")
	}
}

func TestUnifyIdempotent(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	s, err := Unify([]Term{x, y, z}, []Term{y, z, Const("a")}, nil)
	if err != nil {
		t.Fatalf("unify: %v", err)
	}
	for k, v := range s {
		if s.Apply(v) != v {
			t.Errorf("not idempotent at %v↦%v", k, v)
		}
		if s.Resolve(k) != Const("a") {
			t.Errorf("chain not collapsed: %v resolves to %v", k, s.Resolve(k))
		}
	}
}

func TestUnifyPrefersNullOverVar(t *testing.T) {
	n, v := NullTerm("n1"), Var("x")
	s, err := Unify([]Term{n}, []Term{v}, nil)
	if err != nil {
		t.Fatalf("unify: %v", err)
	}
	if s.Resolve(v) != n {
		t.Errorf("variable should bind to null, got %v", s)
	}
}

func TestUnifyRespectsInit(t *testing.T) {
	x := Var("x")
	init := Subst{x: Const("a")}
	if _, err := Unify([]Term{x}, []Term{Const("b")}, init); err == nil {
		t.Error("expected clash with initial binding")
	}
	if init.Resolve(x) != Const("a") {
		t.Error("Unify mutated init")
	}
	s, err := Unify([]Term{x}, []Term{Const("a")}, init)
	if err != nil || s.Resolve(x) != Const("a") {
		t.Errorf("unify with compatible init: %v %v", s, err)
	}
}

func TestUnifyErrorMessage(t *testing.T) {
	_, err := Unify([]Term{Const("a")}, []Term{Const("b")}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	ue, ok := err.(*UnifyError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ue.Error() == "" {
		t.Error("empty error message")
	}
}

func TestMatchTuple(t *testing.T) {
	s := NewSubst()
	pat := []Term{Var("x"), Var("x"), Const("a")}
	tgt := []Term{Const("c"), Const("c"), Const("a")}
	added, ok := MatchTuple(s, pat, tgt)
	if !ok {
		t.Fatal("match should succeed")
	}
	if s.Apply(Var("x")) != Const("c") {
		t.Errorf("binding wrong: %v", s)
	}
	Unbind(s, added)
	if len(s) != 0 {
		t.Errorf("Unbind left residue: %v", s)
	}
}

func TestMatchTupleFailureRollsBack(t *testing.T) {
	s := NewSubst()
	pat := []Term{Var("x"), Var("x")}
	tgt := []Term{Const("c"), Const("d")}
	if _, ok := MatchTuple(s, pat, tgt); ok {
		t.Fatal("match should fail")
	}
	if len(s) != 0 {
		t.Errorf("failed match left bindings: %v", s)
	}
	// Constant mismatch and length mismatch also roll back.
	if _, ok := MatchTuple(s, []Term{Const("a")}, []Term{Const("b")}); ok {
		t.Error("constant mismatch should fail")
	}
	if _, ok := MatchTuple(s, []Term{Var("x")}, []Term{Const("a"), Const("b")}); ok {
		t.Error("length mismatch should fail")
	}
}

func TestMatchTupleRespectsExistingBindings(t *testing.T) {
	s := Subst{Var("x"): Const("c")}
	if _, ok := MatchTuple(s, []Term{Var("x")}, []Term{Const("d")}); ok {
		t.Error("match must respect pre-existing binding")
	}
	if added, ok := MatchTuple(s, []Term{Var("x")}, []Term{Const("c")}); !ok || len(added) != 0 {
		t.Errorf("compatible match should succeed with no additions: %v %v", added, ok)
	}
}

// Property: Unify produces a substitution under which both tuples are equal.
func TestUnifyProperty(t *testing.T) {
	mk := func(sel []uint8) []Term {
		names := []string{"a", "b", "c"}
		out := make([]Term, len(sel))
		for i, s := range sel {
			switch s % 3 {
			case 0:
				out[i] = Const(names[int(s/3)%3])
			case 1:
				out[i] = Var(names[int(s/3)%3])
			default:
				out[i] = NullTerm(names[int(s/3)%3])
			}
		}
		return out
	}
	f := func(selA, selB [4]uint8) bool {
		a, b := mk(selA[:]), mk(selB[:])
		s, err := Unify(a, b, nil)
		if err != nil {
			return true // failures are allowed; success must be correct
		}
		ra, rb := s.ResolveTuple(a), s.ResolveTuple(b)
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compose associates with Apply: (s∘t)(x) == t(s(x)) resolved.
func TestComposeProperty(t *testing.T) {
	f := func(i, j, k uint8) bool {
		x := Var("x")
		s := Subst{x: Var("y")}
		u := Subst{Var("y"): Const(string(rune('a' + i%4)))}
		c := s.Compose(u)
		return c.Resolve(x) == u.Apply(s.Apply(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
