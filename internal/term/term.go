// Package term defines the three-sorted universe of the paper —
// constants (C), labelled nulls (N) and variables (V) — together with
// substitutions and most-general unifiers over atom argument tuples.
//
// Terms are small comparable values so they can be used directly as map
// keys; all higher layers (instances, queries, dependencies, the chase,
// the rewriting engine) are built on top of this package.
package term

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind discriminates the three disjoint sorts of terms.
type Kind uint8

const (
	// Constant is an element of the countably infinite set C. Constants
	// are interpreted as themselves; homomorphisms are the identity on C.
	Constant Kind = iota
	// Null is a labelled null from N. Nulls appear in instances (but
	// never in queries or dependencies) and may be mapped by
	// homomorphisms and identified by the egd chase.
	Null
	// Variable is a query/dependency variable from V. Variables never
	// appear in instances.
	Variable
)

// String returns the sort name, mostly for error messages.
func (k Kind) String() string {
	switch k {
	case Constant:
		return "constant"
	case Null:
		return "null"
	case Variable:
		return "variable"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Term is a single member of C ∪ N ∪ V. The zero value is the constant
// with the empty name; use the constructors to build meaningful terms.
// Term is comparable and cheap to copy.
type Term struct {
	K    Kind
	Name string
}

// Const returns the constant named name.
func Const(name string) Term { return Term{K: Constant, Name: name} }

// Var returns the variable named name.
func Var(name string) Term { return Term{K: Variable, Name: name} }

// NullTerm returns the labelled null named name.
func NullTerm(name string) Term { return Term{K: Null, Name: name} }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.K == Constant }

// IsNull reports whether t is a labelled null.
func (t Term) IsNull() bool { return t.K == Null }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.K == Variable }

// String renders the term: constants bare, nulls with a leading '⊥',
// variables with a leading '?'. The rendering is unambiguous and is the
// inverse of nothing in particular — parsers live in higher packages.
func (t Term) String() string {
	switch t.K {
	case Null:
		return "_:" + t.Name
	case Variable:
		return "?" + t.Name
	default:
		return t.Name
	}
}

// AppendKey appends t's canonical key encoding — kind byte, name
// bytes, NUL — to buf. Tuple keys built by concatenating AppendKey
// over the tuple's terms are the repo-wide canonical dedup/sort key
// format (hom.AppendTupleKey, the yannakakis oracle keys); the byte
// layout is load-bearing for answer order and must not change.
func (t Term) AppendKey(buf []byte) []byte {
	buf = append(buf, byte(t.K))
	buf = append(buf, t.Name...)
	return append(buf, 0)
}

// Compare orders terms first by kind then by name. It induces a total
// order used for canonical forms.
func (t Term) Compare(u Term) int {
	if t.K != u.K {
		if t.K < u.K {
			return -1
		}
		return 1
	}
	return strings.Compare(t.Name, u.Name)
}

// freshCounter backs FreshNull and FreshVar. A process-global atomic is
// deliberate: the chase requires nulls "not occurring in I", and a
// global counter guarantees freshness across every instance in the
// process without threading state everywhere.
var freshCounter atomic.Uint64

// FreshNull returns a labelled null guaranteed distinct from every
// previously created fresh null in this process.
func FreshNull() Term {
	return Term{K: Null, Name: fmt.Sprintf("n%d", freshCounter.Add(1))}
}

// FreshVar returns a variable guaranteed distinct from every previously
// created fresh variable in this process.
func FreshVar() Term {
	return Term{K: Variable, Name: fmt.Sprintf("v%d", freshCounter.Add(1))}
}

// ResetFreshCounter restarts the fresh-name counter. It exists only so
// tests and benchmarks can produce reproducible names; concurrent use
// with FreshNull is safe but defeats the purpose.
func ResetFreshCounter() { freshCounter.Store(0) }

// Subst is a substitution: a finite mapping from variables and nulls to
// terms. Constants are never in the domain (homomorphisms are the
// identity on C); Apply enforces this by passing constants through.
type Subst map[Term]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Apply returns the image of t: s[t] if t is in the domain, t itself
// otherwise. Application does not chase chains; use Resolve for the
// fully dereferenced value when the substitution is triangular.
//
// Constants are looked up like any other term: ordinary homomorphism
// substitutions never put constants in their domain (they are the
// identity on C), but the egd chase deliberately maps the frozen query
// constants of Lemma 1, which "are treated as nulls during the chase".
func (s Subst) Apply(t Term) Term {
	if u, ok := s[t]; ok {
		return u
	}
	return t
}

// Resolve follows binding chains (x ↦ y, y ↦ z yields z) until a fixed
// point. It panics on cycles longer than the substitution itself, which
// can only arise from a corrupted substitution.
func (s Subst) Resolve(t Term) Term {
	for i := 0; i <= len(s); i++ {
		u := s.Apply(t)
		if u == t {
			return t
		}
		t = u
	}
	panic("term: cyclic substitution")
}

// ApplyTuple maps Apply over a tuple, returning a fresh slice.
func (s Subst) ApplyTuple(ts []Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = s.Apply(t)
	}
	return out
}

// ResolveTuple maps Resolve over a tuple, returning a fresh slice.
func (s Subst) ResolveTuple(ts []Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = s.Resolve(t)
	}
	return out
}

// Clone returns a shallow copy of s.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Compose returns the substitution t∘s: first s, then t, with every
// binding fully resolved through t. Bindings of t on terms outside the
// range of s are preserved.
func (s Subst) Compose(t Subst) Subst {
	out := make(Subst, len(s)+len(t))
	for k, v := range s {
		out[k] = t.Apply(v)
	}
	for k, v := range t {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// Domain returns the domain of s in canonical order.
func (s Subst) Domain() []Term {
	out := make([]Term, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the substitution as {x↦a, y↦b} in canonical order.
func (s Subst) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.Domain() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s↦%s", k, s[k])
	}
	b.WriteByte('}')
	return b.String()
}
