package term

import "fmt"

// UnifyError reports why two tuples failed to unify.
type UnifyError struct {
	Left, Right Term
	Reason      string
}

func (e *UnifyError) Error() string {
	return fmt.Sprintf("term: cannot unify %s with %s: %s", e.Left, e.Right, e.Reason)
}

// Unify computes a most general unifier of the two equally long tuples,
// extending the (possibly nil) initial substitution init. Constants
// unify only with themselves or with variables/nulls; variables and
// nulls unify with anything. The returned substitution is idempotent
// (fully resolved). init is not modified.
//
// Unify treats nulls like variables, which is what the egd chase and
// the rewriting engine need: both identify labelled nulls with other
// terms. Callers that must keep certain terms rigid (e.g. the frozen
// constants of Lemma 1) should model them as constants.
func Unify(a, b []Term, init Subst) (Subst, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("term: tuple length mismatch %d vs %d", len(a), len(b))
	}
	s := init.Clone()
	if s == nil {
		s = NewSubst()
	}
	for i := range a {
		if err := unifyOne(s, a[i], b[i]); err != nil {
			return nil, err
		}
	}
	// Resolve to an idempotent substitution.
	for k := range s {
		s[k] = s.Resolve(k)
	}
	return s, nil
}

// unifyOne merges the equivalence classes of x and y in s, binding
// flexible terms (variables, nulls) and rejecting constant clashes.
func unifyOne(s Subst, x, y Term) error {
	x = s.Resolve(x)
	y = s.Resolve(y)
	if x == y {
		return nil
	}
	switch {
	case x.IsConst() && y.IsConst():
		return &UnifyError{Left: x, Right: y, Reason: "distinct constants"}
	case x.IsConst():
		s[y] = x
	case y.IsConst():
		s[x] = y
	case x.IsNull() && y.IsVar():
		// Prefer binding variables to nulls: substitution images stay
		// within instance terms, which downstream code expects.
		s[y] = x
	default:
		s[x] = y
	}
	return nil
}

// MatchTuple extends init so that pattern maps onto target
// homomorphism-style: variables and nulls of pattern may be bound, but
// target terms are rigid. It returns false (and leaves init untouched)
// when no extension exists. On success the extension is written into
// init in place; the returned undo list names the keys added, so
// backtracking searches can cheaply revert with Unbind.
func MatchTuple(init Subst, pattern, target []Term) (added []Term, ok bool) {
	if len(pattern) != len(target) {
		return nil, false
	}
	for i := range pattern {
		p := pattern[i]
		t := target[i]
		if p.IsConst() {
			if p != t {
				Unbind(init, added)
				return nil, false
			}
			continue
		}
		if got, bound := init[p]; bound {
			if got != t {
				Unbind(init, added)
				return nil, false
			}
			continue
		}
		init[p] = t
		added = append(added, p)
	}
	return added, true
}

// Unbind removes the listed keys from s; the inverse of a successful
// MatchTuple extension.
func Unbind(s Subst, keys []Term) {
	for _, k := range keys {
		delete(s, k)
	}
}
