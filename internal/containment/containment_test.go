package containment

import (
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/rewrite"
)

func decide(t *testing.T, q, qp, set string, opt Options) Decision {
	t.Helper()
	var s *deps.Set
	if set == "" {
		s = &deps.Set{}
	} else {
		s = deps.MustParse(set)
	}
	d, err := Contains(cq.MustParse(q), cq.MustParse(qp), s, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlainContainment(t *testing.T) {
	d := decide(t, "q(x) :- E(x,y), E(y,z).", "q(x) :- E(x,y).", "", Options{})
	if !d.Holds || !d.Definitive || d.Method != MethodPlain {
		t.Errorf("decision = %+v", d)
	}
	d = decide(t, "q(x) :- E(x,y).", "q(x) :- E(x,y), E(y,z).", "", Options{})
	if d.Holds || !d.Definitive {
		t.Errorf("decision = %+v", d)
	}
}

func TestArityMismatch(t *testing.T) {
	d := decide(t, "q(x) :- E(x,y).", "q(x,y) :- E(x,y).", "", Options{})
	if d.Holds || !d.Definitive {
		t.Errorf("decision = %+v", d)
	}
}

func TestExample1UnderFullTGD(t *testing.T) {
	// q' ⊆Σ q and q ⊆Σ q' — Example 1's equivalence.
	set := "Interest(x,z), Class(y,z) -> Owns(x,y)."
	q := "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)."
	qp := "q(x,y) :- Interest(x,z), Class(y,z)."
	if d := decide(t, qp, q, set, Options{}); !d.Holds || !d.Definitive || d.Method != MethodChase {
		t.Errorf("q' ⊆Σ q: %+v", d)
	}
	if d := decide(t, q, qp, set, Options{}); !d.Holds || !d.Definitive {
		t.Errorf("q ⊆Σ q': %+v", d)
	}
	// Without the constraint, q' is not contained in q.
	if d := decide(t, qp, q, "", Options{}); d.Holds {
		t.Errorf("q' ⊆ q without Σ: %+v", d)
	}
	eq, err := Equivalent(cq.MustParse(q), cq.MustParse(qp), deps.MustParse(set), Options{})
	if err != nil || !eq.Holds || !eq.Definitive {
		t.Errorf("Equivalent = %+v, %v", eq, err)
	}
}

func TestGuardedBoundedChase(t *testing.T) {
	// Linear (hence guarded) set with an infinite chase.
	set := "Person(x) -> Parent(x,y).\nParent(x,y) -> Person(y)."
	q := "q(x) :- Person(x)."
	qp := "q(x) :- Parent(x,y), Parent(y,z)."
	d := decide(t, q, qp, set, Options{})
	if !d.Holds || d.Method != MethodBounded {
		t.Errorf("decision = %+v", d)
	}
	// Negative case under truncation is not definitive.
	qn := "q(x) :- Dead(x)."
	dn := decide(t, q, qn, set, Options{})
	if dn.Holds {
		t.Errorf("decision = %+v", dn)
	}
	if dn.Definitive {
		t.Errorf("negative answer under truncated chase must not be definitive: %+v", dn)
	}
}

func TestStickyRewritingMethod(t *testing.T) {
	// Sticky but neither guarded, non-recursive, full nor weakly
	// acyclic, so auto-dispatch must pick the rewriting method.
	set := "P(x), P(y) -> R(x,y).\nR(x,y) -> P(z), Q(x,z)."
	s := deps.MustParse(set)
	if !s.IsSticky() || s.IsGuarded() || s.IsNonRecursive() || s.IsFull() || s.IsWeaklyAcyclic() {
		t.Fatalf("test set has wrong classes: %v", s.Classes())
	}
	q := "q :- P(a), P(b)."
	qp := "q :- R(u,v)."
	d := decide(t, q, qp, set, Options{})
	if d.Method != MethodRewrite {
		t.Errorf("method = %s", d.Method)
	}
	if !d.Holds || !d.Definitive {
		t.Errorf("decision = %+v", d)
	}
}

func TestEGDContainment(t *testing.T) {
	// Under the key, y and z merge, so P and Q hold of the same node.
	set := "R(x,y), R(x,z) -> y = z."
	q := "q(x) :- R(x,y), P(y), R(x,z), Q(z)."
	qp := "q(x) :- R(x,y), P(y), Q(y)."
	if d := decide(t, q, qp, set, Options{}); !d.Holds || !d.Definitive || d.Method != MethodChase {
		t.Errorf("⊆ under key: %+v", d)
	}
	// Without the key that direction fails (P and Q on distinct nodes).
	if d := decide(t, q, qp, "", Options{}); d.Holds {
		t.Errorf("⊆ without key: %+v", d)
	}
	// The converse holds plainly.
	if d := decide(t, qp, q, "", Options{}); !d.Holds {
		t.Errorf("⊇ plain: %+v", d)
	}
}

func TestForcedMethodAndErrors(t *testing.T) {
	set := deps.MustParse("R(x,y), R(x,z) -> y = z.")
	_, err := Contains(cq.MustParse("q :- R(x,y)."), cq.MustParse("q :- R(x,y)."), set,
		Options{Method: MethodRewrite})
	if err == nil {
		t.Error("rewriting over egds should error")
	}
	_, err = Contains(cq.MustParse("q :- R(x,y)."), cq.MustParse("q :- R(x,y)."), set,
		Options{Method: "nope"})
	if err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTruncatedRewritingNotDefinitive(t *testing.T) {
	set := "A(x) -> B(x).\nB(x) -> C(x)."
	d := decide(t, "q :- A(u).", "q :- C(u).", set,
		Options{Method: MethodRewrite, Rewrite: rewrite.Options{MaxDisjuncts: 2}})
	// With only 2 disjuncts the A-rewriting may be missed; whatever the
	// verdict, a negative must be non-definitive.
	if !d.Holds && d.Definitive {
		t.Errorf("truncated negative marked definitive: %+v", d)
	}
}

func TestEquivalentShortCircuit(t *testing.T) {
	set := deps.MustParse("R(x,y) -> S(y).")
	d, err := Equivalent(cq.MustParse("q :- S(u)."), cq.MustParse("q :- T(u)."), set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Holds {
		t.Errorf("unrelated queries equivalent: %+v", d)
	}
}

func TestChaseOptionsPropagate(t *testing.T) {
	set := "Person(x) -> Parent(x,y).\nParent(x,y) -> Person(y)."
	q := "q(x) :- Person(x)."
	// A long chain needs more depth than 1.
	qp := "q(x) :- Parent(x,y1), Parent(y1,y2), Parent(y2,y3), Parent(y3,y4)."
	d := decide(t, q, qp, set, Options{Chase: chase.Options{MaxDepth: 1}})
	if d.Holds {
		t.Errorf("found witness beyond depth budget: %+v", d)
	}
	if d.Definitive {
		t.Error("truncated negative marked definitive")
	}
	d = decide(t, q, qp, set, Options{})
	if !d.Holds {
		t.Errorf("default budget too small: %+v", d)
	}
}

func TestUnsatisfiableLeftSideTriviallyContained(t *testing.T) {
	set := "R(x,y), R(x,z) -> y = z."
	unsat := "q :- R(x,'a'), R(x,'b')."
	other := "q :- T(u)."
	d := decide(t, unsat, other, set, Options{})
	if !d.Holds || !d.Definitive {
		t.Errorf("unsat ⊆Σ anything should hold: %+v", d)
	}
	// The converse does not hold (T(u) is satisfiable, unsat never matches).
	d = decide(t, other, unsat, set, Options{})
	if d.Holds {
		t.Errorf("satisfiable ⊆Σ unsatisfiable accepted: %+v", d)
	}
}

// TestPreparedMatchesContains: Prepared.Check must return exactly what
// Contains returns, across every method selection path — it is the
// same procedure with the right-hand-side work hoisted.
func TestPreparedMatchesContains(t *testing.T) {
	cases := []struct {
		name string
		set  *deps.Set
	}{
		{"plain", &deps.Set{}},
		{"full", deps.MustParse("Interest(x,z), Class(y,z) -> Owns(x,y).")},
		{"guarded-recursive", deps.MustParse("Owns(x,y) -> Owns(y,w).")},
		{"sticky", deps.MustParse("UA(x), UB(y) -> Owns(x,y).\nOwns(x,y) -> Owns(y,w).\nUB(x), UA(y) -> Interest(x,y).")},
		{"egd", deps.MustParse("Owns(x,y), Owns(x,z) -> y = z.")},
	}
	qp := cq.MustParse("q(x) :- Interest(x,z), Class(y,z), Owns(x,y).")
	lefts := []*cq.CQ{
		cq.MustParse("q(x) :- Interest(x,z), Class(y,z), Owns(x,y), Owns(x,u)."),
		cq.MustParse("q(x) :- Owns(x,y)."),
		cq.MustParse("q(x) :- Interest(x,z), Class(x,z)."),
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := Prepare(qp, c.set, Options{})
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			for _, q := range lefts {
				want, err := Contains(q, qp, c.set, Options{})
				if err != nil {
					t.Fatalf("Contains(%s): %v", q, err)
				}
				got, err := p.Check(q)
				if err != nil {
					t.Fatalf("Check(%s): %v", q, err)
				}
				if got != want {
					t.Errorf("%s: Check=%+v Contains=%+v", q, got, want)
				}
			}
		})
	}
}
