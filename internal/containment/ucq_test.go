package containment

import (
	"testing"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
)

func ucq(t *testing.T, lines string) *cq.UCQ {
	t.Helper()
	u, err := cq.ParseUCQ(lines)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestContainsUCQPlain(t *testing.T) {
	empty := &deps.Set{}
	q := ucq(t, "q(x) :- E(x,y), E(y,z).\nq(x) :- F(x).")
	qp := ucq(t, "q(x) :- E(x,y).\nq(x) :- F(x).")
	dec, err := ContainsUCQ(q, qp, empty, Options{})
	if err != nil || !dec.Holds || !dec.Definitive {
		t.Errorf("Q ⊆ Q': %+v %v", dec, err)
	}
	// Converse fails: the 1-edge disjunct is in neither right disjunct.
	dec, err = ContainsUCQ(qp, q, empty, Options{})
	if err != nil || dec.Holds {
		t.Errorf("Q' ⊆ Q: %+v %v", dec, err)
	}
}

func TestContainsUCQUnderConstraints(t *testing.T) {
	set := deps.MustParse("A(x) -> B(x).")
	q := ucq(t, "q(x) :- A(x).\nq(x) :- B(x).")
	qp := ucq(t, "q(x) :- B(x).")
	dec, err := ContainsUCQ(q, qp, set, Options{})
	if err != nil || !dec.Holds {
		t.Errorf("A∪B ⊆Σ B: %+v %v", dec, err)
	}
	// Without the constraint the A-disjunct escapes.
	dec, err = ContainsUCQ(q, qp, &deps.Set{}, Options{})
	if err != nil || dec.Holds {
		t.Errorf("A∪B ⊆ B without Σ: %+v %v", dec, err)
	}
}

func TestEquivalentUCQ(t *testing.T) {
	set := deps.MustParse("A(x) -> B(x).")
	q := ucq(t, "q(x) :- A(x).\nq(x) :- B(x).")
	qp := ucq(t, "q(x) :- B(x).")
	dec, err := EquivalentUCQ(q, qp, set, Options{})
	if err != nil || !dec.Holds || !dec.Definitive {
		t.Errorf("equivalence under Σ: %+v %v", dec, err)
	}
	other := ucq(t, "q(x) :- C(x).")
	dec, err = EquivalentUCQ(q, other, set, Options{})
	if err != nil || dec.Holds {
		t.Errorf("unrelated unions equivalent: %+v %v", dec, err)
	}
}
