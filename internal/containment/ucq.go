package containment

import (
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
)

// ContainsUCQ decides Q ⊆Σ Q' for unions of conjunctive queries: every
// disjunct of Q must be Σ-contained in Q', and a CQ q is contained in a
// union iff it is contained in the union as a whole — which for the
// chase-based method means some disjunct of Q' evaluates to the frozen
// head over chase(q,Σ). Conservatively (and exactly, for the classes
// used here) we test per-disjunct containment q ⊆Σ q'_j.
//
// Per-disjunct testing is sound always; for UCQ right-hand sides it is
// also complete whenever the chase characterization applies, because
// chase(q,Σ) is a single canonical instance: c(x̄) ∈ Q'(chase(q,Σ)) iff
// it is in some disjunct's evaluation.
func ContainsUCQ(q, qp *cq.UCQ, set *deps.Set, opt Options) (Decision, error) {
	overall := Decision{Holds: true, Definitive: true}
	for _, qi := range q.Disjuncts {
		hit := false
		definitiveMiss := true
		for _, qj := range qp.Disjuncts {
			dec, err := Contains(qi, qj, set, opt)
			if err != nil {
				return Decision{}, err
			}
			overall.Method = dec.Method
			if dec.Holds {
				hit = true
				break
			}
			if !dec.Definitive {
				definitiveMiss = false
			}
		}
		if !hit {
			return Decision{Holds: false, Definitive: definitiveMiss, Method: overall.Method}, nil
		}
	}
	return overall, nil
}

// EquivalentUCQ decides Q ≡Σ Q'.
func EquivalentUCQ(q, qp *cq.UCQ, set *deps.Set, opt Options) (Decision, error) {
	a, err := ContainsUCQ(q, qp, set, opt)
	if err != nil || !a.Holds {
		return a, err
	}
	b, err := ContainsUCQ(qp, q, set, opt)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Holds: b.Holds, Definitive: a.Definitive && b.Definitive, Method: b.Method}, nil
}
