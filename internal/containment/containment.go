// Package containment decides CQ containment and equivalence under
// constraints (the problem Cont(C) of the paper, Section 2), selecting
// a decision procedure per dependency class:
//
//   - no constraints: plain Chandra–Merlin containment;
//   - egds, or tgd classes with terminating chase (non-recursive,
//     weakly acyclic, full): the chase characterization of Lemma 1;
//   - guarded (possibly non-terminating chase): the depth-budgeted
//     guarded chase — sound always, complete whenever the witness lies
//     within the budget (see DESIGN.md §2 for the substitution note);
//   - sticky: UCQ rewriting of the right-hand query.
//
// Every Decision carries a Definitive flag: positive answers are always
// definitive (both procedures are sound); a negative answer is
// definitive only when no budget truncated the underlying procedure.
package containment

import (
	"errors"
	"fmt"
	"sync/atomic"

	"semacyclic/internal/chase"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hom"
	"semacyclic/internal/obs"
	"semacyclic/internal/rewrite"
	"semacyclic/internal/telemetry"
)

// Method names a containment decision procedure.
type Method string

// Available methods.
const (
	MethodPlain   Method = "plain"         // no constraints
	MethodChase   Method = "chase"         // terminating chase, Lemma 1
	MethodBounded Method = "bounded-chase" // depth-budgeted guarded chase
	MethodRewrite Method = "ucq-rewriting" // backward rewriting (NR, sticky)
)

// Options tunes the decision procedures. Zero values select defaults.
type Options struct {
	// Method forces a procedure; empty selects automatically by class.
	Method Method
	// Chase tunes chase-based methods. For MethodBounded a zero
	// MaxDepth picks a budget derived from the right-hand query and Σ.
	Chase chase.Options
	// Rewrite tunes the rewriting-based method.
	Rewrite rewrite.Options
	// Trace, when non-nil, records a span around Prepare (the hoisted,
	// possibly-exponential right-hand-side work). Per-candidate Check
	// calls are deliberately unspanned: they run inside the layer-4
	// branch workers, where spans would make the tree shape depend on
	// scheduling. Nil is free.
	Trace *telemetry.Recorder
}

// Decision is the outcome of a containment check.
type Decision struct {
	Holds      bool
	Definitive bool
	Method     Method
}

// Contains decides q ⊆Σ q'. See the package comment for the guarantees
// attached to the returned Decision.
func Contains(q, qp *cq.CQ, set *deps.Set, opt Options) (Decision, error) {
	obs.ContainmentChecks.Add(1)
	if len(q.Free) != len(qp.Free) {
		return Decision{Holds: false, Definitive: true, Method: MethodPlain}, nil
	}
	m := SelectMethod(set, opt)
	switch m {
	case MethodPlain:
		return Decision{Holds: hom.Contained(q, qp), Definitive: true, Method: MethodPlain}, nil
	case MethodChase, MethodBounded:
		return chaseContains(q, qp, set, m, opt)
	case MethodRewrite:
		return rewriteContains(q, qp, set, opt)
	default:
		return Decision{}, fmt.Errorf("containment: unknown method %q", m)
	}
}

// SelectMethod resolves the decision procedure a Contains/Prepare call
// with these options would run: the forced Options.Method when set,
// else the per-class default. Exposed so the observability layer can
// report the method even when no Prepared checker was built.
func SelectMethod(set *deps.Set, opt Options) Method {
	if opt.Method != "" {
		return opt.Method
	}
	return pickMethod(set)
}

// pickMethod selects the default decision procedure for the set.
func pickMethod(set *deps.Set) Method {
	if set == nil || set.Len() == 0 {
		return MethodPlain
	}
	if len(set.EGDs) > 0 {
		// Egd-only and mixed sets go through the chase; the egd chase
		// terminates, and mixed sets are budgeted like MethodChase.
		return MethodChase
	}
	switch {
	case set.IsNonRecursive(), set.IsWeaklyAcyclic(), set.IsFull():
		return MethodChase // terminating chase
	case set.IsGuarded():
		return MethodBounded
	case set.IsSticky():
		return MethodRewrite
	default:
		// Outside every decidable class: the bounded chase is still a
		// sound semi-decision procedure.
		return MethodBounded
	}
}

func chaseContains(q, qp *cq.CQ, set *deps.Set, m Method, opt Options) (Decision, error) {
	copt := opt.Chase
	if m == MethodBounded && copt.MaxDepth <= 0 {
		copt.MaxDepth = defaultGuardedDepth(qp, set)
	}
	res, frozen, err := chase.Query(q, set, copt)
	if errors.Is(err, chase.ErrFailed) {
		// chase(q,Σ) fails ⇒ q is Σ-unsatisfiable ⇒ q(D) = ∅ on every
		// D ⊨ Σ ⇒ q ⊆Σ q' trivially.
		return Decision{Holds: true, Definitive: true, Method: m}, nil
	}
	if err != nil {
		return Decision{}, err
	}
	holds := hom.HasTuple(qp, res.Instance, frozen)
	return Decision{
		Holds:      holds,
		Definitive: holds || res.Complete,
		Method:     m,
	}, nil
}

// defaultGuardedDepth picks the chase depth budget for guarded sets.
// Homomorphism witnesses for a query with k atoms over a guarded chase
// live within a prefix whose depth grows with k and the dependency
// count; the default of k·(|Σ|+2)+2 covers every workload in this
// repository with slack and is overridable via Options.Chase.MaxDepth.
func defaultGuardedDepth(qp *cq.CQ, set *deps.Set) int {
	d := qp.Size()*(len(set.TGDs)+2) + 2
	if d < 4 {
		d = 4
	}
	return d
}

func rewriteContains(q, qp *cq.CQ, set *deps.Set, opt Options) (Decision, error) {
	rw, err := rewrite.Rewrite(qp, set, opt.Rewrite)
	if err != nil {
		return Decision{}, err
	}
	db, frozen := q.Freeze()
	for _, d := range rw.UCQ.Disjuncts {
		if hom.HasTuple(d, db, frozen) {
			return Decision{Holds: true, Definitive: true, Method: MethodRewrite}, nil
		}
	}
	return Decision{Holds: false, Definitive: rw.Complete, Method: MethodRewrite}, nil
}

// Prepared fixes the right-hand query q' of a containment test and
// precomputes everything that does not depend on the left-hand side:
// the method selection, the chase depth budget, and — the expensive one
// — the UCQ rewriting of q' for sticky sets, which is worst-case
// exponential and identical across calls. Check(q) returns exactly what
// Contains(q, q', Σ, opt) would. A Prepared value is immutable after
// Prepare — except the Checks reuse counter, an atomic — and safe for
// concurrent Check calls.
type Prepared struct {
	qp  *cq.CQ
	set *deps.Set
	opt Options
	m   Method
	rw  *rewrite.Result // only for MethodRewrite
	// checks counts Check calls served — the Prepare reuse count. A
	// pointer so WithCancel copies share one counter (and so the struct
	// stays copyable by value inside WithCancel).
	checks *atomic.Int64
}

// Prepare builds a Prepared checker for the fixed right-hand side q'.
func Prepare(qp *cq.CQ, set *deps.Set, opt Options) (*Prepared, error) {
	sp := opt.Trace.Start("containment:prepare")
	defer sp.End()
	m := SelectMethod(set, opt)
	p := &Prepared{qp: qp, set: set, opt: opt, m: m, checks: new(atomic.Int64)}
	if m == MethodRewrite {
		rw, err := rewrite.Rewrite(qp, set, opt.Rewrite)
		if err != nil {
			return nil, err
		}
		p.rw = rw
	}
	if m == MethodBounded && p.opt.Chase.MaxDepth <= 0 {
		p.opt.Chase.MaxDepth = defaultGuardedDepth(qp, set)
	}
	return p, nil
}

// WithCancel returns a view of the prepared checker whose Check calls
// abort when the channel fires (wired into the chase/rewrite budgets of
// the per-call left-hand-side work). The precomputed right-hand-side
// state — the hoisted UCQ rewriting and the reuse counter — is shared
// with the receiver, so a long-lived cache can hold one Prepared per
// (q', Σ) and hand out per-request cancellable views for free. A nil
// channel yields a view with cancellation cleared: caches store that
// view so a stale per-request channel never outlives its request.
func (p *Prepared) WithCancel(cancel <-chan struct{}) *Prepared {
	cp := *p
	cp.opt.Chase.Cancel = cancel
	cp.opt.Rewrite.Cancel = cancel
	return &cp
}

// Check decides q ⊆Σ q' for the prepared right-hand side.
func (p *Prepared) Check(q *cq.CQ) (Decision, error) {
	p.checks.Add(1)
	obs.ContainmentChecks.Add(1)
	if len(q.Free) != len(p.qp.Free) {
		return Decision{Holds: false, Definitive: true, Method: MethodPlain}, nil
	}
	switch p.m {
	case MethodPlain:
		return Decision{Holds: hom.Contained(q, p.qp), Definitive: true, Method: MethodPlain}, nil
	case MethodRewrite:
		db, frozen := q.Freeze()
		for _, d := range p.rw.UCQ.Disjuncts {
			if hom.HasTuple(d, db, frozen) {
				return Decision{Holds: true, Definitive: true, Method: MethodRewrite}, nil
			}
		}
		return Decision{Holds: false, Definitive: p.rw.Complete, Method: MethodRewrite}, nil
	default:
		// Chase methods chase the left-hand side, which varies per
		// call; the depth budget above is the only precomputable part.
		return chaseContains(q, p.qp, p.set, p.m, p.opt)
	}
}

// Checks returns the number of Check calls this prepared right-hand
// side has served — the reuse count that measures what Prepare's
// hoisting amortized. WithCancel views share the receiver's counter.
func (p *Prepared) Checks() int64 { return p.checks.Load() }

// SelectedMethod returns the decision procedure Prepare resolved.
func (p *Prepared) SelectedMethod() Method { return p.m }

// RewriteSize reports the size of the hoisted UCQ rewriting and whether
// it was exhaustive; (0, true) when the selected method does not
// rewrite.
func (p *Prepared) RewriteSize() (disjuncts int, complete bool) {
	if p.rw == nil {
		return 0, true
	}
	return len(p.rw.UCQ.Disjuncts), p.rw.Complete
}

// Equivalent decides q ≡Σ q' as two containment checks. The decision is
// definitive when both directions are.
func Equivalent(q, qp *cq.CQ, set *deps.Set, opt Options) (Decision, error) {
	a, err := Contains(q, qp, set, opt)
	if err != nil {
		return Decision{}, err
	}
	if !a.Holds {
		return Decision{Holds: false, Definitive: a.Definitive, Method: a.Method}, nil
	}
	b, err := Contains(qp, q, set, opt)
	if err != nil {
		return Decision{}, err
	}
	return Decision{
		Holds:      b.Holds,
		Definitive: a.Definitive && b.Definitive,
		Method:     b.Method,
	}, nil
}
