package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"testing"
)

func TestNewStatsSentinels(t *testing.T) {
	st := NewStats()
	if st.Search.WinnerBranch != -1 {
		t.Errorf("WinnerBranch = %d, want -1", st.Search.WinnerBranch)
	}
	if st.Search.Candidates != -1 {
		t.Errorf("Candidates = %d, want -1", st.Search.Candidates)
	}
}

// TestDeterministicFingerprintExcludesNondeterministicFields: two runs
// differing only in scheduling-dependent measurements must fingerprint
// identically — that is the whole point of the fingerprint.
func TestDeterministicFingerprintExcludesNondeterministicFields(t *testing.T) {
	a := NewStats()
	a.Chase = ChaseStats{Rounds: 3, TriggersFired: 7, Complete: true}
	a.Search = SearchStats{Branches: 9, Bound: 6, Budget: 1500, WinnerBranch: 2, Candidates: 41}
	a.AddLayer("core", 1, 100)
	a.AddLayer("complete", 41, 5000)

	b := NewStats()
	b.Chase = a.Chase
	b.Search = a.Search
	b.AddLayer("core", 1, 999999) // different wall time
	b.AddLayer("complete", 41, 1)
	// Perturb every nondeterministic search field.
	b.Search.CandidatesObserved = 120
	b.Search.NodesVisited = 1 << 20
	b.Search.PrunedByHom = 5555
	b.Search.Verified = 17
	b.Search.PruneMemoHits = 3
	b.Search.Workers = 8
	b.Search.WorkerBranches = []int64{4, 5}
	b.WallNS = 123456789
	b.Hom = HomStats{Enumerations: 42, Backtracks: 9000}
	b.Containment.PreparedChecks = 77

	if af, bf := a.DeterministicFingerprint(), b.DeterministicFingerprint(); af != bf {
		t.Errorf("fingerprints diverged on nondeterministic fields only:\n  a: %s\n  b: %s", af, bf)
	}
}

// TestDeterministicFingerprintSeesDeterministicFields: each
// deterministic field must actually reach the fingerprint.
func TestDeterministicFingerprintSeesDeterministicFields(t *testing.T) {
	base := func() *Stats {
		st := NewStats()
		st.Chase = ChaseStats{Rounds: 2}
		st.Search = SearchStats{Branches: 4, WinnerBranch: -1, Candidates: -1}
		st.AddLayer("core", 1, 0)
		return st
	}
	mutations := []struct {
		name string
		mut  func(*Stats)
	}{
		{"chase.rounds", func(s *Stats) { s.Chase.Rounds++ }},
		{"chase.fired", func(s *Stats) { s.Chase.TriggersFired++ }},
		{"chase.nulls", func(s *Stats) { s.Chase.NullsCreated++ }},
		{"search.branches", func(s *Stats) { s.Search.Branches++ }},
		{"search.winner", func(s *Stats) { s.Search.WinnerBranch = 0 }},
		{"search.exhausted", func(s *Stats) { s.Search.Exhausted = true }},
		{"search.candidates", func(s *Stats) { s.Search.Candidates = 7 }},
		{"containment.method", func(s *Stats) { s.Containment.Method = "chase" }},
		{"layers", func(s *Stats) { s.AddLayer("complete", 3, 0) }},
	}
	want := base().DeterministicFingerprint()
	for _, m := range mutations {
		st := base()
		m.mut(st)
		if st.DeterministicFingerprint() == want {
			t.Errorf("mutation %q invisible to the fingerprint", m.name)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	st := NewStats()
	st.Chase = ChaseStats{Rounds: 3, TriggersCollected: 12, TriggersFired: 7, NullsCreated: 2, Atoms: 10, Complete: true}
	st.Search.Branches = 5
	st.AddLayer("core", 1, 42)
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"chase"`, `"search"`, `"containment"`, `"hom"`, `"layers"`, `"wall_ns"`, `"winner_branch"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Chase != st.Chase {
		t.Errorf("chase round-trip: %+v != %+v", back.Chase, st.Chase)
	}
	if got, want := back.DeterministicFingerprint(), st.DeterministicFingerprint(); got != want {
		t.Errorf("fingerprint round-trip: %s != %s", got, want)
	}
}

func TestCountersAndSnapshots(t *testing.T) {
	before := TakeSnapshot()
	HomEnumerations.Add(3)
	HomBacktracks.Add(11)
	d := before.HomDelta()
	if d.Enumerations < 3 || d.Backtracks < 11 {
		t.Errorf("delta %+v, want ≥ {3 11}", d)
	}
	after := TakeSnapshot()
	if after[HomEnumerations.Name()]-before[HomEnumerations.Name()] < 3 {
		t.Errorf("snapshot delta too small: %v vs %v", after, before)
	}
}

func TestPublishIdempotent(t *testing.T) {
	Publish()
	Publish() // second call must not panic on duplicate expvar names
	v := expvar.Get(Decisions.Name())
	if v == nil {
		t.Fatalf("counter %s not published", Decisions.Name())
	}
	base := Decisions.Load()
	Decisions.Add(2)
	if got := v.String(); got == "" {
		t.Error("published var renders empty")
	}
	if Decisions.Load() != base+2 {
		t.Errorf("Load after Add: got %d, want %d", Decisions.Load(), base+2)
	}
}
