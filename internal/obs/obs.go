// Package obs is the decision pipeline's observability layer: per-run
// statistics structs that flow out on core.Result, process-global
// always-on counters published through expvar, and the determinism
// bookkeeping that keeps the two kinds of numbers honest.
//
// Every counter is classified as DETERMINISTIC or NONDETERMINISTIC:
//
//   - Deterministic fields are identical for every Options.Parallelism
//     value (-j on the CLI) on a fixed input — they are part of the
//     engine's determinism contract, and the determinism tests assert
//     their fingerprints byte for byte.
//   - Nondeterministic fields depend on goroutine scheduling (work done
//     by branches that a canonically earlier winner later aborted, memo
//     races that recompute a cached verdict, per-worker utilization,
//     wall times). They are measurements, not contract.
//
// The structs are plain data with JSON tags; the stats-collection cost
// lives in the packages that fill them (per-branch local counters
// flushed once, one atomic pair per hom enumeration), measured in the
// BENCH_* trajectory's stats-overhead arm.
package obs

import (
	"fmt"
	"strings"

	"semacyclic/internal/telemetry"
)

// Stats is the per-decision observability snapshot attached to
// core.Result. The zero value is ready to fill; NewStats applies the
// sentinels (-1 for "no winner" / "not defined").
type Stats struct {
	// Chase observes chase(q,Σ), the Lemma 1 pruning target built by
	// the decision layers. Deterministic: the pipeline chases with
	// sequential rounds, independent of -j.
	Chase ChaseStats `json:"chase" sem:"group"`
	// Search observes the layer-4 complete bounded enumeration.
	Search SearchStats `json:"search" sem:"group"`
	// Containment observes the prepared right-hand-side checker.
	Containment ContainmentStats `json:"containment" sem:"group"`
	// Hom is the process-global homomorphism-engine delta observed
	// during the decision. NONDETERMINISTIC — concurrent decisions in
	// the same process bleed into each other's deltas.
	Hom HomStats `json:"hom" sem:"group"`
	// Layers records, in order, each decision layer that ran: its
	// candidate count (deterministic) and wall time (nondeterministic).
	Layers []LayerStats `json:"layers,omitempty" sem:"group"`
	// WallNS is the total decision wall time. NONDETERMINISTIC — the
	// telemetry.DurationNS type marks it as wall-clock-derived, and the
	// statsclass analyzer rejects any telemetry-typed field not tagged
	// sem:"nondet".
	WallNS telemetry.DurationNS `json:"wall_ns" sem:"nondet"`
}

// NewStats returns a Stats with the "not defined" sentinels applied.
func NewStats() *Stats {
	return &Stats{Search: SearchStats{WinnerBranch: -1, Candidates: -1}}
}

// LayerStats is one decision layer's contribution.
type LayerStats struct {
	// Name is the layer's Result.Layer-style name.
	Name string `json:"name" sem:"det"`
	// Candidates examined by the layer. DETERMINISTIC: the early layers
	// are sequential, and the complete layer records its decisive count
	// (see SearchStats.Candidates), not the raw scheduling-dependent
	// total.
	Candidates int `json:"candidates" sem:"det"`
	// WallNS is the layer's wall time. NONDETERMINISTIC.
	WallNS telemetry.DurationNS `json:"wall_ns" sem:"nondet"`
}

// ChaseStats counts the work of one chase run. All fields are
// DETERMINISTIC for fixed chase options: the decision pipeline chases
// with sequential rounds regardless of -j. (Chasing with
// chase.Options.Parallelism > 1 reaches the same fixpoint but may
// regroup rounds, changing Rounds and TriggersCollected — the pipeline
// never does.)
type ChaseStats struct {
	// Rounds is the number of tgd passes executed (including the final
	// pass that fires nothing and certifies the fixpoint).
	Rounds int `json:"rounds" sem:"det"`
	// TriggersCollected is the total number of body homomorphisms
	// gathered across all passes, before applicability re-checks.
	TriggersCollected int `json:"triggers_collected" sem:"det"`
	// TriggersFired is the number of tgd applications performed
	// (identical to the chase Result.Steps counter, and to the number
	// of tgd entries in a Trace).
	TriggersFired int `json:"triggers_fired" sem:"det"`
	// NullsCreated is the number of fresh labelled nulls minted for
	// existential head variables.
	NullsCreated int `json:"nulls_created" sem:"det"`
	// Merges is the number of egd term identifications performed
	// (identical to the number of merge entries in a Trace).
	Merges int `json:"merges" sem:"det"`
	// Atoms is the size of the chased instance.
	Atoms int `json:"atoms" sem:"det"`
	// Complete reports whether the chase reached its fixpoint.
	Complete bool `json:"complete" sem:"det"`
}

// Fingerprint renders the deterministic chase fields canonically.
func (c ChaseStats) Fingerprint() string {
	return fmt.Sprintf("chase{rounds=%d collected=%d fired=%d nulls=%d merges=%d atoms=%d complete=%v}",
		c.Rounds, c.TriggersCollected, c.TriggersFired, c.NullsCreated, c.Merges, c.Atoms, c.Complete)
}

// SearchStats observes the layer-4 branch-decomposed enumeration.
type SearchStats struct {
	// Branches is the number of top-level enumeration branches seeded.
	// DETERMINISTIC.
	Branches int `json:"branches" sem:"det"`
	// Bound is the atom bound actually enumerated to (after the
	// UCQ-class cap, when applied). DETERMINISTIC.
	Bound int `json:"bound" sem:"det"`
	// Budget is the verification-slot budget the run was given.
	// DETERMINISTIC.
	Budget int `json:"budget" sem:"det"`
	// WinnerBranch is the index of the branch whose witness was
	// elected, -1 when no witness was returned. DETERMINISTIC: the
	// canonically least complete-prefixed witness wins at every -j.
	WinnerBranch int `json:"winner_branch" sem:"det"`
	// Exhausted reports a definitive full enumeration. DETERMINISTIC.
	Exhausted bool `json:"exhausted" sem:"det"`
	// Candidates is the decisive candidate count: the number of
	// verifications the sequential (-j 1) order performs up to the
	// decision point. DETERMINISTIC — when a witness is returned it
	// sums the fully-enumerated branches before the winner plus the
	// winner's prefix (branches the parallel run started beyond the
	// winner are excluded); when the run exhausted it is the total.
	// On budget-truncated no-witness runs the sequential prefix cannot
	// be reconstructed from a parallel run, so the field is -1 ("not
	// defined") — identically at every -j. See CandidatesObserved for
	// the raw count.
	Candidates int `json:"candidates" sem:"det"`

	// CandidatesObserved is the raw number of verification slots
	// granted, including work by branches an earlier winner later
	// aborted. NONDETERMINISTIC.
	CandidatesObserved int `json:"candidates_observed" sem:"nondet"`
	// NodesVisited counts enumeration-tree nodes expanded.
	// NONDETERMINISTIC.
	NodesVisited int64 `json:"nodes_visited" sem:"nondet"`
	// PrunedByHom counts prefixes cut by the Lemma 1 pinned-
	// homomorphism test. NONDETERMINISTIC.
	PrunedByHom int64 `json:"pruned_by_hom" sem:"nondet"`
	// Verified counts containment verifications actually evaluated
	// (candidate-memo misses); hits return the cached verdict.
	// NONDETERMINISTIC.
	Verified int64 `json:"verified" sem:"nondet"`
	// Indefinite counts non-definitive verification verdicts (a budget
	// inside the containment check). NONDETERMINISTIC.
	Indefinite int64 `json:"indefinite" sem:"nondet"`
	// PruneMemoHits / PruneMemoMisses are the prefix-homomorphism cache
	// rates. NONDETERMINISTIC (racing branches may recompute a key).
	PruneMemoHits   int64 `json:"prune_memo_hits" sem:"nondet"`
	PruneMemoMisses int64 `json:"prune_memo_misses" sem:"nondet"`
	// CandMemoHits / CandMemoMisses are the candidate-containment cache
	// rates. NONDETERMINISTIC.
	CandMemoHits   int64 `json:"cand_memo_hits" sem:"nondet"`
	CandMemoMisses int64 `json:"cand_memo_misses" sem:"nondet"`
	// Workers is the resolved worker count; WorkerBranches[w] is the
	// number of branches worker w processed (utilization, not
	// assignment). NONDETERMINISTIC.
	Workers        int     `json:"workers" sem:"nondet"`
	WorkerBranches []int64 `json:"worker_branches,omitempty" sem:"nondet"`
}

// Fingerprint renders the deterministic search fields canonically.
func (s SearchStats) Fingerprint() string {
	return fmt.Sprintf("search{branches=%d bound=%d budget=%d winner=%d exhausted=%v candidates=%d}",
		s.Branches, s.Bound, s.Budget, s.WinnerBranch, s.Exhausted, s.Candidates)
}

// ContainmentStats observes the verification side of the search.
type ContainmentStats struct {
	// Method is the containment procedure selected for the fixed
	// right-hand side. DETERMINISTIC.
	Method string `json:"method" sem:"det"`
	// RewriteDisjuncts is the size of the hoisted UCQ rewriting
	// (sticky / non-recursive sets), 0 when the method does not
	// rewrite, -1 when no prepared checker was built (memo disabled).
	// DETERMINISTIC for a fixed DisableSearchMemo setting.
	RewriteDisjuncts int `json:"rewrite_disjuncts" sem:"det"`
	// RewriteComplete reports whether the rewriting was exhaustive.
	RewriteComplete bool `json:"rewrite_complete" sem:"det"`
	// PreparedChecks is the number of Check calls served by the
	// prepared right-hand side — the Prepare reuse count.
	// NONDETERMINISTIC (aborted branches verify extra candidates).
	PreparedChecks int64 `json:"prepared_checks" sem:"nondet"`
}

// Fingerprint renders the deterministic containment fields canonically.
func (c ContainmentStats) Fingerprint() string {
	return fmt.Sprintf("containment{method=%s disjuncts=%d complete=%v}",
		c.Method, c.RewriteDisjuncts, c.RewriteComplete)
}

// HomStats is a delta of the process-global homomorphism counters.
// NONDETERMINISTIC: the counters are process-wide, so concurrent work
// in other goroutines lands in the same delta.
type HomStats struct {
	// Enumerations counts hom.Enumerate calls (every Exists/Find/
	// Evaluate funnels through it).
	Enumerations int64 `json:"enumerations" sem:"nondet"`
	// Backtracks counts candidate-atom match attempts that failed and
	// forced the backtracking search to retreat.
	Backtracks int64 `json:"backtracks" sem:"nondet"`
}

// AddLayer appends one layer record.
func (s *Stats) AddLayer(name string, candidates int, wallNS telemetry.DurationNS) {
	s.Layers = append(s.Layers, LayerStats{Name: name, Candidates: candidates, WallNS: wallNS})
}

// DeterministicFingerprint serializes exactly the deterministic fields:
// two runs of the same input at any two -j values must produce
// byte-identical fingerprints. Memoization-dependent-but-deterministic
// fields (the containment group) are included; compare
// Chase/Search fingerprints directly when ablating the memo.
func (s *Stats) DeterministicFingerprint() string {
	var b strings.Builder
	b.WriteString(s.Chase.Fingerprint())
	b.WriteByte(' ')
	b.WriteString(s.Search.Fingerprint())
	b.WriteByte(' ')
	b.WriteString(s.Containment.Fingerprint())
	b.WriteString(" layers{")
	for i, l := range s.Layers {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", l.Name, l.Candidates)
	}
	b.WriteByte('}')
	return b.String()
}
