package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// Counter is a named process-global counter: always-on, lock-free, and
// publishable through expvar. Counters only ever grow; readers take
// snapshots and diff them.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the counter's expvar name.
func (c *Counter) Name() string { return c.name }

var registry []*Counter

func reg(name string) *Counter {
	c := &Counter{name: name}
	registry = append(registry, c)
	return c
}

// The process-global always-on counters. Cumulative across the process
// lifetime; all NONDETERMINISTIC in the per-run sense (they aggregate
// every goroutine's work).
var (
	// Decisions counts core.Decide calls completed.
	Decisions = reg("semacyclic.decisions")

	// ChaseRuns / ChaseRounds / ChaseTriggersFired / ChaseNulls /
	// ChaseMerges aggregate the chase engine's work.
	ChaseRuns          = reg("semacyclic.chase.runs")
	ChaseRounds        = reg("semacyclic.chase.rounds")
	ChaseTriggersFired = reg("semacyclic.chase.triggers_fired")
	ChaseNulls         = reg("semacyclic.chase.nulls_created")
	ChaseMerges        = reg("semacyclic.chase.merges")

	// SearchRuns / SearchCandidates aggregate the layer-4 enumerator.
	SearchRuns       = reg("semacyclic.search.runs")
	SearchCandidates = reg("semacyclic.search.candidates")

	// ContainmentChecks counts containment decisions (Contains and
	// Prepared.Check calls).
	ContainmentChecks = reg("semacyclic.containment.checks")

	// HomEnumerations / HomBacktracks aggregate the backtracking
	// homomorphism engine — the innermost hot loop of everything.
	HomEnumerations = reg("semacyclic.hom.enumerations")
	HomBacktracks   = reg("semacyclic.hom.backtracks")

	// The semacycd serving-layer counters (see internal/server):
	// requests accepted, decision-cache hits served byte-identically,
	// requests aborted by their deadline, and requests shed with 429
	// because the worker queue was full.
	ServerRequests  = reg("server.requests")
	ServerCacheHits = reg("server.cache_hits")
	ServerCancelled = reg("server.cancelled")
	ServerShed      = reg("server.shed")

	// The evaluation-layer counters: /evaluate requests completed,
	// compiled-plan cache hits (a hit skips decide + GYO entirely),
	// instances loaded into the registry, and the Yannakakis leaf-load
	// totals (rows read vs rows the per-position indexes avoided).
	ServerEvaluations   = reg("server.evaluations")
	ServerPlanCacheHits = reg("server.plan_cache_hits")
	ServerInstances     = reg("server.instances_loaded")
	EvalRowsScanned     = reg("semacyclic.eval.rows_scanned")
	EvalIndexHits       = reg("semacyclic.eval.index_hits")

	// The incremental-evaluation counters: PATCH /instances batches
	// applied and their effective atom deltas, overlay (what-if)
	// evaluations served, instance epochs advanced by patches, and the
	// per-evaluation reducer decisions — how the retained
	// semijoin-reducer state was used (cold first run, reused verbatim,
	// repaired from the delta, fully recomputed, or a per-tree mix).
	ServerPatches           = reg("server.patches")
	ServerDeltaInserts      = reg("server.delta_inserts")
	ServerDeltaDeletes      = reg("server.delta_deletes")
	ServerOverlayEvals      = reg("server.overlay_evaluations")
	ServerEpochChurn        = reg("server.epoch_churn")
	ServerReducerCold       = reg("server.reducer_cold")
	ServerReducerReused     = reg("server.reducer_reused")
	ServerReducerRepaired   = reg("server.reducer_repaired")
	ServerReducerRecomputed = reg("server.reducer_recomputed")
	ServerReducerMixed      = reg("server.reducer_mixed")
)

// Snapshot is a point-in-time copy of every global counter, for
// computing deltas across a region of work.
type Snapshot map[string]int64

// TakeSnapshot copies the current global counter values.
func TakeSnapshot() Snapshot {
	s := make(Snapshot, len(registry))
	for _, c := range registry {
		s[c.name] = c.Load()
	}
	return s
}

// HomDelta returns the homomorphism-engine counters accumulated since
// the snapshot was taken. Process-global: concurrent work by other
// goroutines is included (see HomStats).
func (s Snapshot) HomDelta() HomStats {
	return HomStats{
		Enumerations: HomEnumerations.Load() - s[HomEnumerations.Name()],
		Backtracks:   HomBacktracks.Load() - s[HomBacktracks.Name()],
	}
}

// All returns every registered global counter, in registration order.
// The registry is fixed at init time, so the returned slice is safe to
// iterate without synchronization (the counters themselves are atomic).
// The /metrics exposition uses this to render the counters alongside
// the serving histograms.
func All() []*Counter {
	return registry
}

var publishOnce sync.Once

// Publish registers every global counter with expvar (idempotent).
// Importing expvar also installs the /debug/vars handler on
// http.DefaultServeMux, so any caller that serves DefaultServeMux —
// cmd/experiments -pprof does — exposes the counters over HTTP.
func Publish() {
	publishOnce.Do(func() {
		for _, c := range registry {
			c := c
			expvar.Publish(c.name, expvar.Func(func() any { return c.Load() }))
		}
	})
}
