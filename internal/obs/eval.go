package obs

import (
	"fmt"

	"semacyclic/internal/telemetry"
)

// EvalStats is the per-evaluation observability snapshot: one query
// executed against one database instance, by whichever method the plan
// selected. It travels on core.Plan.Execute results and out of the
// semacycd /evaluate endpoint.
//
// Like Stats, fields split into DETERMINISTIC (fixed for a given
// plan/database/options triple — the index and semijoin work of the
// sequential evaluators) and NONDETERMINISTIC (wall times). The
// determinism tests fingerprint the former across -j values.
type EvalStats struct {
	// Method names the evaluation procedure that ran: "yannakakis",
	// "guarded-game", "egd-game" or "generic". DETERMINISTIC.
	Method string `json:"method" sem:"det"`
	// Answers is the size of the answer set. DETERMINISTIC.
	Answers int `json:"answers" sem:"det"`
	// RowsScanned counts database atoms read while loading join-tree
	// leaves (or game/generic candidates): every atom fetched from a
	// per-predicate or per-position list. DETERMINISTIC.
	RowsScanned int64 `json:"rows_scanned" sem:"det"`
	// IndexLookups counts ByPos probes issued for bound (constant)
	// argument positions. DETERMINISTIC.
	IndexLookups int64 `json:"index_lookups" sem:"det"`
	// IndexHits counts rows returned by those probes — the rows that
	// were read instead of scanned. DETERMINISTIC.
	IndexHits int64 `json:"index_hits" sem:"det"`
	// IndexSkippedRows counts the rows the index lookups avoided
	// scanning: Σ over indexed atoms of (predicate size − candidates).
	// DETERMINISTIC.
	IndexSkippedRows int64 `json:"index_skipped_rows" sem:"det"`
	// Semijoins counts semijoin reductions performed (two per join-tree
	// edge in a full Yannakakis pass). DETERMINISTIC.
	Semijoins int64 `json:"semijoins" sem:"det"`
	// SemijoinDroppedRows counts rows eliminated by those reductions.
	// DETERMINISTIC.
	SemijoinDroppedRows int64 `json:"semijoin_dropped_rows" sem:"det"`
	// JoinRows counts rows materialized by the bottom-up join phase.
	// DETERMINISTIC.
	JoinRows int64 `json:"join_rows" sem:"det"`
	// DeltaInserts / DeltaDeletes count the plan-relevant net delta
	// atoms an incremental (ExecuteDelta) run consumed; 0 on full runs.
	// DETERMINISTIC.
	DeltaInserts int64 `json:"delta_inserts,omitempty" sem:"det"`
	DeltaDeletes int64 `json:"delta_deletes,omitempty" sem:"det"`
	// TreesReused / TreesRepaired / TreesRecomputed classify what an
	// incremental run did with each join tree of the plan: reused the
	// cached reducer projection untouched, repaired it from an
	// insert-only delta, or recomputed it (deletes, or no usable
	// state). All 0 on plain full runs. DETERMINISTIC.
	TreesReused     int64 `json:"trees_reused,omitempty" sem:"det"`
	TreesRepaired   int64 `json:"trees_repaired,omitempty" sem:"det"`
	TreesRecomputed int64 `json:"trees_recomputed,omitempty" sem:"det"`
	// WallNS is the evaluation wall time. NONDETERMINISTIC.
	WallNS telemetry.DurationNS `json:"wall_ns" sem:"nondet"`
}

// Fingerprint renders the deterministic evaluation fields canonically;
// two evaluations of the same plan over the same database with the same
// index setting must produce byte-identical fingerprints.
func (e *EvalStats) Fingerprint() string {
	return fmt.Sprintf("eval{method=%s answers=%d scanned=%d lookups=%d hits=%d skipped=%d semijoins=%d dropped=%d joinrows=%d delta{ins=%d del=%d reused=%d repaired=%d recomputed=%d}}",
		e.Method, e.Answers, e.RowsScanned, e.IndexLookups, e.IndexHits,
		e.IndexSkippedRows, e.Semijoins, e.SemijoinDroppedRows, e.JoinRows,
		e.DeltaInserts, e.DeltaDeletes, e.TreesReused, e.TreesRepaired, e.TreesRecomputed)
}
