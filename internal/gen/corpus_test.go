package gen

import (
	"math/rand"
	"strings"
	"testing"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func TestRandomWorkloadCoherent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, class := range WorkloadClasses {
		for i := 0; i < 5; i++ {
			q, set, db := RandomWorkload(r, class, 3, 3, 10, 4)
			if err := q.Validate(); err != nil {
				t.Fatalf("%s: invalid query: %v", class, err)
			}
			if err := set.Validate(); err != nil {
				t.Fatalf("%s: invalid deps: %v", class, err)
			}
			if db.Len() == 0 {
				t.Fatalf("%s: empty database", class)
			}
			// The query must range over predicates the database can
			// populate — otherwise differential runs are vacuous.
			preds, _ := db.Predicates()
			have := strings.Join(preds, " ")
			for _, a := range q.Atoms {
				if !strings.Contains(have, a.Pred) {
					t.Fatalf("%s: query predicate %s absent from db family %v", class, a.Pred, preds)
				}
			}
		}
	}
}

func TestMinimizeShrinksToCulprit(t *testing.T) {
	q := cq.MustParse("q() :- E0(x,y)")
	set := deps.MustParse("E0(x,y) -> E1(y,z).")
	db, err := instance.Parse("E0(a,b). E0(b,c). E1(c,d). E1(d,e).")
	if err != nil {
		t.Fatal(err)
	}
	// Failure predicate: "db still contains E0(a,b)" — the minimizer
	// must strip everything else.
	culprit := instance.NewAtom("E0", term.Const("a"), term.Const("b"))
	fails := func(_ *cq.CQ, _ *deps.Set, d *instance.Instance) bool {
		return d.Has(culprit)
	}
	mq, mset, mdb := Minimize(q, set, db, fails)
	if mdb.Len() != 1 {
		t.Errorf("database not minimal: %s", mdb)
	}
	if mset.Len() != 0 {
		t.Errorf("deps not minimal: %s", mset)
	}
	if len(mq.Atoms) != 1 {
		t.Errorf("query not minimal: %s", mq)
	}
	if !fails(mq, mset, mdb) {
		t.Error("minimized triple no longer fails")
	}
}

func TestEmitEvalCaseRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	q, set, db := RandomWorkload(r, "inclusion", 2, 3, 6, 3)
	out, err := EmitEvalCase(q, set, db, "yes", nil, "test")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"query"`, `"deps"`, `"database"`, `"verdict": "yes"`, `"answers": []`} {
		if !strings.Contains(out, want) {
			t.Errorf("emitted case missing %s:\n%s", want, out)
		}
	}
}
