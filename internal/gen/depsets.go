package gen

import (
	"fmt"
	"math/rand"

	"semacyclic/internal/deps"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// RandomInclusionDeps returns n random inclusion dependencies over
// binary predicates E0..E{k-1}: Ei(x,y) → Ej(y,z) or Ej(x,y) variants.
func RandomInclusionDeps(r *rand.Rand, n, k int) *deps.Set {
	if k < 1 {
		k = 1
	}
	out := &deps.Set{}
	for i := 0; i < n; i++ {
		from := fmt.Sprintf("E%d", r.Intn(k))
		to := fmt.Sprintf("E%d", r.Intn(k))
		x, y, z := term.Var("x"), term.Var("y"), term.Var("z")
		body := []instance.Atom{instance.NewAtom(from, x, y)}
		var head []instance.Atom
		switch r.Intn(3) {
		case 0:
			head = []instance.Atom{instance.NewAtom(to, y, z)} // ∃z
		case 1:
			head = []instance.Atom{instance.NewAtom(to, x, y)}
		default:
			head = []instance.Atom{instance.NewAtom(to, y, x)}
		}
		out.TGDs = append(out.TGDs, deps.MustTGD(body, head))
	}
	return out
}

// RandomGuarded returns n random guarded (non-linear) tgds over a
// ternary guard G and binary side predicates.
func RandomGuarded(r *rand.Rand, n, k int) *deps.Set {
	if k < 1 {
		k = 1
	}
	out := &deps.Set{}
	for i := 0; i < n; i++ {
		x, y, z, w := term.Var("x"), term.Var("y"), term.Var("z"), term.Var("w")
		g := fmt.Sprintf("G%d", r.Intn(k))
		e := fmt.Sprintf("E%d", r.Intn(k))
		body := []instance.Atom{
			instance.NewAtom(g, x, y, z),
			instance.NewAtom(e, x, y),
		}
		var head []instance.Atom
		if r.Intn(2) == 0 {
			head = []instance.Atom{instance.NewAtom(fmt.Sprintf("E%d", r.Intn(k)), y, z)}
		} else {
			head = []instance.Atom{instance.NewAtom(fmt.Sprintf("G%d", r.Intn(k)), x, z, w)} // ∃w
		}
		out.TGDs = append(out.TGDs, deps.MustTGD(body, head))
	}
	return out
}

// RandomNonRecursive returns a random non-recursive set of n tgds over
// a stratified predicate chain L0 → L1 → ... (body predicates always
// from a strictly lower stratum than head predicates).
func RandomNonRecursive(r *rand.Rand, n int) *deps.Set {
	out := &deps.Set{}
	for i := 0; i < n; i++ {
		lo := fmt.Sprintf("L%d", i)
		hi := fmt.Sprintf("L%d", i+1)
		x, y, z := term.Var("x"), term.Var("y"), term.Var("z")
		var body []instance.Atom
		if r.Intn(2) == 0 {
			body = []instance.Atom{instance.NewAtom(lo, x, y)}
		} else {
			body = []instance.Atom{instance.NewAtom(lo, x, y), instance.NewAtom(lo, y, z)}
		}
		var head []instance.Atom
		if r.Intn(2) == 0 {
			head = []instance.Atom{instance.NewAtom(hi, x, term.Var("w"))} // ∃w
		} else {
			head = []instance.Atom{instance.NewAtom(hi, y, x)}
		}
		out.TGDs = append(out.TGDs, deps.MustTGD(body, head))
	}
	if !out.IsNonRecursive() {
		panic("gen: internal: stratified construction must be non-recursive")
	}
	return out
}

// RandomSticky returns a random sticky set of up to n tgds, built by
// generating candidate tgds and keeping those preserving stickiness of
// the accumulated set (rejection sampling against the marking
// procedure).
func RandomSticky(r *rand.Rand, n, k int) *deps.Set {
	if k < 1 {
		k = 1
	}
	out := &deps.Set{}
	for attempts := 0; len(out.TGDs) < n && attempts < 50*n+50; attempts++ {
		x, y, z, w := term.Var("x"), term.Var("y"), term.Var("z"), term.Var("w")
		p := func() string { return fmt.Sprintf("S%d", r.Intn(k)) }
		var cand *deps.TGD
		switch r.Intn(3) {
		case 0: // join propagated to the head
			cand = deps.MustTGD(
				[]instance.Atom{instance.NewAtom(p(), x, y), instance.NewAtom(p(), y, z)},
				[]instance.Atom{instance.NewAtom(p(), y, w)},
			)
		case 1: // linear with existential
			cand = deps.MustTGD(
				[]instance.Atom{instance.NewAtom(p(), x, y)},
				[]instance.Atom{instance.NewAtom(p(), y, w)},
			)
		default: // product rule (Example 2 shape)
			cand = deps.MustTGD(
				[]instance.Atom{instance.NewAtom("U"+p(), x), instance.NewAtom("U"+p(), y)},
				[]instance.Atom{instance.NewAtom(p(), x, y)},
			)
		}
		trial := deps.TGDSet(append(append([]*deps.TGD(nil), out.TGDs...), cand)...)
		if trial.IsSticky() {
			out = trial
		}
	}
	return out
}

// RandomKeys2 returns keys over unary/binary predicates E0..E{k-1}:
// for each chosen binary predicate, the first attribute is a key.
func RandomKeys2(r *rand.Rand, n, k int) *deps.Set {
	if k < 1 {
		k = 1
	}
	out := &deps.Set{}
	used := make(map[string]bool)
	for i := 0; i < n && len(used) < k; i++ {
		p := fmt.Sprintf("E%d", r.Intn(k))
		if used[p] {
			continue
		}
		used[p] = true
		fd, err := deps.NewFD(p, 2, []int{0}, 1)
		if err != nil {
			panic(err)
		}
		out.EGDs = append(out.EGDs, fd.AsEGD())
	}
	return out
}

// RandomNonRecursiveMultiHead returns a random non-recursive set whose
// tgds may have multi-atom heads sharing existential variables — the
// shape that exercises piece-unification in the rewriting engine.
func RandomNonRecursiveMultiHead(r *rand.Rand, n int) *deps.Set {
	out := &deps.Set{}
	for i := 0; i < n; i++ {
		lo := fmt.Sprintf("M%d", i)
		hi := fmt.Sprintf("M%d", i+1)
		aux := fmt.Sprintf("X%d", i+1)
		x, y, w := term.Var("x"), term.Var("y"), term.Var("w")
		body := []instance.Atom{instance.NewAtom(lo, x, y)}
		var head []instance.Atom
		switch r.Intn(3) {
		case 0: // two head atoms sharing the existential w
			head = []instance.Atom{
				instance.NewAtom(hi, x, w),
				instance.NewAtom(aux, w, y),
			}
		case 1: // two head atoms, one full, one existential
			head = []instance.Atom{
				instance.NewAtom(hi, y, x),
				instance.NewAtom(aux, x, w),
			}
		default: // three head atoms chaining the existential
			head = []instance.Atom{
				instance.NewAtom(hi, x, w),
				instance.NewAtom(aux, w, w),
				instance.NewAtom(aux, w, y),
			}
		}
		out.TGDs = append(out.TGDs, deps.MustTGD(body, head))
	}
	if !out.IsNonRecursive() {
		panic("gen: internal: stratified multi-head construction must be non-recursive")
	}
	return out
}
