package gen

import (
	"fmt"
	"math/rand"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// RandomDelta derives a random mutation batch from an instance: up to
// nDel deletes drawn from the atoms present, and nIns inserts over the
// instance's own predicates (schema arities respected), mixing
// constants already in the domain with fresh ones so a batch both
// densifies existing joins and extends the active domain.
// Deterministic for a given rand source and instance; the instance is
// not modified.
func RandomDelta(r *rand.Rand, db *instance.Instance, nIns, nDel int) (inserts, deletes []instance.Atom) {
	atoms := db.Atoms()
	for i := 0; i < nDel && len(atoms) > 0; i++ {
		deletes = append(deletes, atoms[r.Intn(len(atoms))])
	}

	preds := db.Schema().Predicates()
	if len(preds) == 0 {
		return inserts, deletes
	}
	domain := db.Terms()
	pick := func() term.Term {
		if len(domain) == 0 || r.Intn(4) == 0 {
			return term.Const(fmt.Sprintf("d%d", r.Intn(1+nIns*2)))
		}
		return domain[r.Intn(len(domain))]
	}
	for i := 0; i < nIns; i++ {
		p := preds[r.Intn(len(preds))]
		args := make([]term.Term, p.Arity)
		for j := range args {
			args[j] = pick()
		}
		inserts = append(inserts, instance.NewAtom(p.Name, args...))
	}
	return inserts, deletes
}
