package gen

import (
	"math/rand"
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/cq"
	"semacyclic/internal/hom"
	"semacyclic/internal/hypergraph"
	"semacyclic/internal/rewrite"
)

func TestQueryFamilies(t *testing.T) {
	cases := []struct {
		name    string
		q       *cq.CQ
		size    int
		acyclic bool
	}{
		{"path", PathCQ(4), 4, true},
		{"star", StarCQ(5), 5, true},
		{"cycle", CycleCQ(4), 4, false},
		{"2-cycle", CycleCQ(2), 2, true}, // digon shares both vars: one edge set
		{"clique", CliqueCQ(3), 6, false},
		{"grid", GridCQ(2), 12, false},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.name, err)
		}
		if c.q.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.name, c.q.Size(), c.size)
		}
		if got := hypergraph.IsAcyclic(c.q.Atoms); got != c.acyclic {
			t.Errorf("%s acyclic = %v, want %v", c.name, got, c.acyclic)
		}
	}
}

func TestRandomAcyclicCQIsAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		q := RandomAcyclicCQ(r, 1+r.Intn(10), []string{"E", "F"})
		if !hypergraph.IsAcyclic(q.Atoms) {
			t.Fatalf("random acyclic query is cyclic: %s", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomCQAndDB(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	q := RandomCQ(r, 5, 3, nil)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	db := RandomGraphDB(r, 30, 5)
	if db.Len() == 0 {
		t.Error("empty random db")
	}
}

func TestExample1DBSatisfiesTGD(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		db := Example1DB(r, 5+r.Intn(10), 5+r.Intn(10), 3+r.Intn(3))
		if !chase.Satisfies(db, Example1TGD()) {
			t.Fatalf("Example1DB violates the tgd:\n%s", db)
		}
	}
}

func TestExample1Shapes(t *testing.T) {
	if hypergraph.IsAcyclic(Example1Query().Atoms) {
		t.Error("Example 1 query must be cyclic")
	}
	if !hypergraph.IsAcyclic(Example1Witness().Atoms) {
		t.Error("Example 1 witness must be acyclic")
	}
	if !Example1TGD().IsFull() {
		t.Error("Example 1 tgd is full")
	}
}

func TestExample2(t *testing.T) {
	set := Example2Set()
	if !set.IsNonRecursive() || !set.IsSticky() || set.IsGuarded() {
		t.Errorf("Example 2 classes wrong: %v", set.Classes())
	}
	q := Example2Query(4)
	if !hypergraph.IsAcyclic(q.Atoms) {
		t.Error("Example 2 query should be acyclic")
	}
}

func TestExample3(t *testing.T) {
	set, q := Example3Set(2)
	if !set.IsSticky() {
		t.Error("Example 3 set should be sticky")
	}
	rw, err := rewrite.Rewrite(q, set, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Complete {
		t.Error("Example 3 rewriting should complete")
	}
}

func TestExample4(t *testing.T) {
	if !hypergraph.IsAcyclic(Example4Query().Atoms) {
		t.Error("Example 4 query should be acyclic")
	}
	if !Example4Key().IsKeys() {
		t.Error("Example 4 constraint should be a key")
	}
}

// TestExample5GridCascade is the heart of the Figure 4 reproduction:
// the query is acyclic, and its chase under the three keys contains the
// full (n+1)×(n+1) grid.
func TestExample5GridCascade(t *testing.T) {
	for n := 1; n <= 3; n++ {
		q, keys := Example5Grid(n)
		if !hypergraph.IsAcyclic(q.Atoms) {
			t.Fatalf("n=%d: Example 5 query must be acyclic", n)
		}
		if !keys.IsKeys() {
			t.Fatalf("n=%d: constraints must be keys", n)
		}
		res, _, err := chase.Query(q, keys, chase.Options{})
		if err != nil {
			t.Fatalf("n=%d: chase failed: %v", n, err)
		}
		if !res.Complete {
			t.Fatalf("n=%d: key chase must terminate", n)
		}
		grid := GridCQ(n)
		if !hom.EvaluateBool(grid, res.Instance) {
			t.Errorf("n=%d: chase does not contain the %dx%d grid:\n%s",
				n, n+1, n+1, res.Instance)
		}
		// The chased query must be cyclic for n ≥ 2 (a genuine grid),
		// with treewidth at least n (Example 5's real point).
		thawed := cq.ThawAtoms(res.Instance.AtomsUnordered())
		if n >= 2 && hypergraph.IsAcyclic(thawed) {
			t.Errorf("n=%d: chased instance unexpectedly acyclic", n)
		}
		if tw := hypergraph.TreewidthUpperBound(thawed); tw < n {
			t.Errorf("n=%d: treewidth bound %d below grid treewidth", n, tw)
		}
	}
}

func TestRandomDepSets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ids := RandomInclusionDeps(r, 5, 3)
	if !ids.IsInclusionDependencies() || !ids.IsLinear() || !ids.IsGuarded() {
		t.Errorf("inclusion deps classes wrong: %v", ids.Classes())
	}
	g := RandomGuarded(r, 5, 2)
	if !g.IsGuarded() {
		t.Errorf("guarded set not guarded: %s", g)
	}
	nr := RandomNonRecursive(r, 5)
	if !nr.IsNonRecursive() {
		t.Errorf("NR set recursive: %s", nr)
	}
	st := RandomSticky(r, 5, 2)
	if len(st.TGDs) == 0 || !st.IsSticky() {
		t.Errorf("sticky set wrong: %s", st)
	}
	k2 := RandomKeys2(r, 3, 3)
	if len(k2.EGDs) == 0 || !k2.IsK2() {
		t.Errorf("K2 set wrong: %s", k2)
	}
}
