package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// Example1Query returns the paper's Example 1 query
// q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y) — a core that is not
// acyclic, but semantically acyclic under Example1TGD.
func Example1Query() *cq.CQ {
	return cq.MustParse("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
}

// Example1Witness returns the acyclic reformulation of Example 1:
// q'(x,y) :- Interest(x,z), Class(y,z).
func Example1Witness() *cq.CQ {
	return cq.MustParse("q(x,y) :- Interest(x,z), Class(y,z).")
}

// Example1TGD returns the compulsive-collector constraint
// Interest(x,z), Class(y,z) → Owns(x,y).
func Example1TGD() *deps.Set {
	return deps.MustParse("Interest(x,z), Class(y,z) -> Owns(x,y).")
}

// Example1DB synthesizes a music-store database with the given numbers
// of customers, records and styles that satisfies Example1TGD (every
// customer owns every record classified with a style they declared
// interest in). Interests and classifications are random but seeded.
func Example1DB(r *rand.Rand, customers, records, styles int) *instance.Instance {
	db := instance.New()
	style := func(i int) term.Term { return term.Const(fmt.Sprintf("s%d", i)) }
	rec := func(i int) term.Term { return term.Const(fmt.Sprintf("r%d", i)) }
	cust := func(i int) term.Term { return term.Const(fmt.Sprintf("c%d", i)) }

	classOf := make([][]int, records)
	for j := 0; j < records; j++ {
		n := 1 + r.Intn(2)
		for k := 0; k < n; k++ {
			s := r.Intn(styles)
			classOf[j] = append(classOf[j], s)
			db.Add(instance.NewAtom("Class", rec(j), style(s)))
		}
	}
	for i := 0; i < customers; i++ {
		interested := make(map[int]bool)
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			s := r.Intn(styles)
			interested[s] = true
			db.Add(instance.NewAtom("Interest", cust(i), style(s)))
		}
		// Close under the compulsive-collector tgd.
		for j := 0; j < records; j++ {
			for _, s := range classOf[j] {
				if interested[s] {
					db.Add(instance.NewAtom("Owns", cust(i), rec(j)))
					break
				}
			}
		}
		// A few extra ownerships beyond the constraint.
		if records > 0 && r.Intn(3) == 0 {
			db.Add(instance.NewAtom("Owns", cust(i), rec(r.Intn(records))))
		}
	}
	return db
}

// Example2Set returns the tgd of Example 2: P(x), P(y) → R(x,y), which
// is both non-recursive and sticky but destroys acyclicity during the
// chase (an n-clique appears).
func Example2Set() *deps.Set {
	return deps.MustParse("P(x), P(y) -> R(x,y).")
}

// Example2Query returns the acyclic query P(x1) ∧ ... ∧ P(xn).
func Example2Query(n int) *cq.CQ {
	if n < 1 {
		n = 1
	}
	atoms := make([]instance.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = instance.NewAtom("P", v("x%d", i+1))
	}
	return cq.MustNew(nil, atoms)
}

// Example3Set returns the sticky set of Example 3 for width n, together
// with the query P0(0,...,0,0,1): every UCQ rewriting has a disjunct
// over P_n with exactly 2^n atoms.
func Example3Set(n int) (*deps.Set, *cq.CQ) {
	var lines []string
	for i := 1; i <= n; i++ {
		mk := func(subst string) string {
			args := make([]string, n+2)
			for j := 1; j <= n; j++ {
				args[j-1] = fmt.Sprintf("x%d", j)
			}
			args[i-1] = subst
			args[n] = "Z"
			args[n+1] = "O"
			return strings.Join(args, ",")
		}
		lines = append(lines, fmt.Sprintf("P%d(%s), P%d(%s) -> P%d(%s).", i, mk("Z"), i, mk("O"), i-1, mk("Z")))
	}
	set := deps.MustParse(strings.Join(lines, "\n"))
	args := make([]string, n+2)
	for j := 0; j < n+1; j++ {
		args[j] = "0"
	}
	args[n+1] = "1"
	q := cq.MustParse(fmt.Sprintf("q :- P0(%s).", strings.Join(args, ",")))
	return set, q
}

// Example4Query returns the acyclic chain query of Example 4, and
// Example4Key the key R(x,y), R(x,z) → y = z that chases it into a
// cyclic query.
func Example4Query() *cq.CQ {
	return cq.MustParse("q :- R(x,y), S(x,y,z), S(x,z,w), S(x,w,v), R(x,v).")
}

// Example4Key returns the key of Example 4.
func Example4Key() *deps.Set {
	return deps.MustParse("R(x,y), R(x,z) -> y = z.")
}

// Example5Grid reconstructs the Example 5 / Figure 4 phenomenon for an
// n×n grid of squares: an acyclic query that the key chase turns into
// an instance containing the full (n+1)×(n+1) grid.
//
// Construction (documented in DESIGN.md): each square (i,j) is a
// self-contained acyclic gadget with private corner variables t
// (top-left), u (top-right), l (bottom-left) and two bottom-right
// candidates w1, w2:
//
//	H(t,u), V(t,l), H(l,w1), V(u,w2), R(t,u,l,w1), R(t,u,l,w2)
//
// Gadgets are stitched into a tree ("comb"): horizontal stitch edges
// H(t_{i,j}, t_{i,j+1}) along every row and vertical stitch edges
// V(t_{i,0}, t_{i+1,0}) along the first column. The keys
//
//	ǫ1 = R(x,y,z,w), R(x,y,z,w') → w = w'
//	ǫ2 = H(x,y), H(x,z) → y = z
//	ǫ3 = V(x,y), V(x,z) → y = z
//
// then cascade left-to-right, top-to-bottom: ǫ1 closes each square,
// ǫ2/ǫ3 identify neighbouring squares' shared corners, and the chase
// result contains the full grid. ǫ1 and ǫ2 are exactly the paper's
// keys; ǫ3 is the symmetric vertical key (the paper's figure routes
// vertical identification through its R-atoms; the phenomenon — an
// acyclic query whose key chase has treewidth Θ(n) — is identical).
func Example5Grid(n int) (*cq.CQ, *deps.Set) {
	if n < 1 {
		n = 1
	}
	t := func(i, j int) term.Term { return v("t%d_%d", i, j) }
	u := func(i, j int) term.Term { return v("u%d_%d", i, j) }
	l := func(i, j int) term.Term { return v("l%d_%d", i, j) }
	w1 := func(i, j int) term.Term { return v("w1_%d_%d", i, j) }
	w2 := func(i, j int) term.Term { return v("w2_%d_%d", i, j) }

	var atoms []instance.Atom
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			atoms = append(atoms,
				instance.NewAtom("H", t(i, j), u(i, j)),
				instance.NewAtom("V", t(i, j), l(i, j)),
				instance.NewAtom("H", l(i, j), w1(i, j)),
				instance.NewAtom("V", u(i, j), w2(i, j)),
				instance.NewAtom("R", t(i, j), u(i, j), l(i, j), w1(i, j)),
				instance.NewAtom("R", t(i, j), u(i, j), l(i, j), w2(i, j)),
			)
			if j+1 < n {
				atoms = append(atoms, instance.NewAtom("H", t(i, j), t(i, j+1)))
			}
		}
		if i+1 < n {
			atoms = append(atoms, instance.NewAtom("V", t(i, 0), t(i+1, 0)))
		}
	}
	q := cq.MustNew(nil, atoms)
	keys := deps.MustParse(`
R(x,y,z,w), R(x,y,z,w2) -> w = w2.
H(x,y), H(x,z) -> y = z.
V(x,y), V(x,z) -> y = z.
`)
	return q, keys
}
