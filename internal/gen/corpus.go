package gen

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// This file feeds the torture corpus (testdata/corpus) and the
// FuzzMethodAgreement harness: coherent random (q, Σ, D) workloads per
// dependency class, a chase-based builder of Σ-satisfying databases, a
// greedy shrinker for failing triples, and JSON emission in the corpus
// eval-case format so a minimized failure can be frozen verbatim.

// WorkloadClasses enumerates the dependency classes RandomWorkload
// generates, in the order the fuzz harness indexes them.
var WorkloadClasses = []string{"none", "inclusion", "guarded", "sticky", "nonrecursive", "keys"}

// RandomWorkload returns a coherent random triple (query, Σ, database)
// for the named class: the dependency set comes from the matching
// Random* generator, and the query and database range over that
// generator's predicate family, so the chase and the evaluation
// methods actually interact instead of passing each other by. Queries
// are mostly tree-shaped with an occasional cyclic one, carry up to
// two free variables, and sometimes pin a constant. Unknown class
// names fall back to "none" (no dependencies).
func RandomWorkload(r *rand.Rand, class string, nDeps, qAtoms, dbAtoms, domain int) (*cq.CQ, *deps.Set, *instance.Instance) {
	if nDeps < 1 {
		nDeps = 1
	}
	if dbAtoms < 1 {
		dbAtoms = 1
	}
	var (
		set     *deps.Set
		qPreds  []string // binary predicates the query draws from
		dbExtra func(db *instance.Instance)
		keyed   bool // first argument unique per predicate (egd-safe)
	)
	cst := func() term.Term { return term.Const(fmt.Sprintf("c%d", r.Intn(max(domain, 1)))) }
	switch class {
	case "inclusion":
		set = RandomInclusionDeps(r, nDeps, 2)
		qPreds = []string{"E0", "E1"}
	case "guarded":
		set = RandomGuarded(r, nDeps, 2)
		qPreds = []string{"E0", "E1"}
		dbExtra = func(db *instance.Instance) {
			for i := 0; i < dbAtoms/2+1; i++ {
				db.Add(instance.NewAtom(fmt.Sprintf("G%d", r.Intn(2)), cst(), cst(), cst()))
			}
		}
	case "sticky":
		set = RandomSticky(r, nDeps, 2)
		qPreds = []string{"S0", "S1"}
		dbExtra = func(db *instance.Instance) {
			for i := 0; i < dbAtoms/3+1; i++ {
				db.Add(instance.NewAtom(fmt.Sprintf("US%d", r.Intn(2)), cst()))
			}
		}
	case "nonrecursive":
		set = RandomNonRecursive(r, nDeps)
		qPreds = []string{"L0", "L1"}
	case "keys":
		set = RandomKeys2(r, nDeps, 2)
		qPreds = []string{"E0", "E1"}
		keyed = true // unique key positions keep the egd chase clash-free
	default:
		set = &deps.Set{}
		qPreds = []string{"E0"}
	}
	q := randomEvalCQ(r, qAtoms, qPreds, domain)
	db := instance.New()
	for i := 0; i < dbAtoms; i++ {
		first := cst()
		if keyed {
			first = term.Const(fmt.Sprintf("c%d", i))
		}
		db.Add(instance.NewAtom(qPreds[r.Intn(len(qPreds))], first, cst()))
	}
	if dbExtra != nil {
		dbExtra(db)
	}
	return q, set, db
}

// randomEvalCQ builds a query for differential evaluation: mostly
// tree-shaped (so the acyclicity layers have something to find) with
// an occasional arbitrary shape, up to two free variables, and with
// one variable pinned to a constant about a third of the time.
func randomEvalCQ(r *rand.Rand, qAtoms int, preds []string, domain int) *cq.CQ {
	var base *cq.CQ
	if r.Intn(4) > 0 {
		base = RandomAcyclicCQ(r, qAtoms, preds)
	} else {
		base = RandomCQ(r, qAtoms, qAtoms+1, preds)
	}
	atoms := make([]instance.Atom, len(base.Atoms))
	for i, a := range base.Atoms {
		atoms[i] = a.Clone()
	}
	vars := atomVars(atoms)
	if r.Intn(3) == 0 && len(vars) > 1 {
		pin := vars[r.Intn(len(vars))]
		c := term.Const(fmt.Sprintf("c%d", r.Intn(max(domain, 1))))
		for i := range atoms {
			for j := range atoms[i].Args {
				if atoms[i].Args[j] == pin {
					atoms[i].Args[j] = c
				}
			}
		}
		vars = atomVars(atoms)
	}
	var free []term.Term
	if n := r.Intn(3); n > 0 && len(vars) > 0 { // 0 free (Boolean) a third of the time
		for i := 0; i < n && i < len(vars); i++ {
			free = append(free, vars[i])
		}
	}
	q, err := cq.New(free, atoms)
	if err != nil {
		// Pinning emptied an atom family in a way New rejects; fall
		// back to the Boolean base query, which is always valid.
		return base
	}
	return q
}

// atomVars returns the distinct variables of the atoms in first-seen
// order.
func atomVars(atoms []instance.Atom) []term.Term {
	seen := make(map[term.Term]bool)
	var out []term.Term
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// Minimize greedily shrinks a failing (q, Σ, D) triple: it repeatedly
// tries dropping one database atom, one dependency, or one query atom,
// keeping any removal under which fails still reports true, until a
// fixpoint. The database is kept non-empty and the query valid (cq.New
// must accept it), so the result can always be emitted as a corpus
// case. fails must be a pure predicate of its arguments.
func Minimize(q *cq.CQ, set *deps.Set, db *instance.Instance,
	fails func(*cq.CQ, *deps.Set, *instance.Instance) bool) (*cq.CQ, *deps.Set, *instance.Instance) {
	for progress := true; progress; {
		progress = false
		for _, a := range db.Atoms() {
			if db.Len() == 1 {
				break
			}
			trial := db.Clone()
			trial.Remove(a)
			if fails(q, set, trial) {
				db = trial
				progress = true
			}
		}
		for i := 0; i < len(set.TGDs); i++ {
			trial := &deps.Set{TGDs: dropIndexTGD(set.TGDs, i), EGDs: set.EGDs}
			if fails(q, trial, db) {
				set = trial
				progress = true
				i--
			}
		}
		for i := 0; i < len(set.EGDs); i++ {
			trial := &deps.Set{TGDs: set.TGDs, EGDs: dropIndexEGD(set.EGDs, i)}
			if fails(q, trial, db) {
				set = trial
				progress = true
				i--
			}
		}
		for i := 0; i < len(q.Atoms) && len(q.Atoms) > 1; i++ {
			atoms := append(append([]instance.Atom(nil), q.Atoms[:i]...), q.Atoms[i+1:]...)
			remaining := make(map[term.Term]bool)
			for _, t := range atomVars(atoms) {
				remaining[t] = true
			}
			var free []term.Term
			for _, x := range q.Free {
				if remaining[x] {
					free = append(free, x)
				}
			}
			trial, err := cq.New(free, atoms)
			if err != nil {
				continue
			}
			if fails(trial, set, db) {
				q = trial
				progress = true
				i--
			}
		}
	}
	return q, set, db
}

func dropIndexTGD(list []*deps.TGD, i int) []*deps.TGD {
	out := append([]*deps.TGD(nil), list[:i]...)
	return append(out, list[i+1:]...)
}

func dropIndexEGD(list []*deps.EGD, i int) []*deps.EGD {
	out := append([]*deps.EGD(nil), list[:i]...)
	return append(out, list[i+1:]...)
}

// AnswerStrings renders canonical answers as the string matrix the
// corpus JSON format stores (constant names, canonical order
// preserved).
func AnswerStrings(ans [][]term.Term) [][]string {
	out := make([][]string, len(ans))
	for i, tup := range ans {
		row := make([]string, len(tup))
		for j, t := range tup {
			row[j] = t.Name
		}
		out[i] = row
	}
	return out
}

// EmitEvalCase renders a (q, Σ, D) triple with its expected verdict
// and answers as a corpus eval-tier JSON case (see internal/corpus),
// ready to be frozen under testdata/corpus/eval/. Answers must already
// be canonical; a nil matrix becomes the empty one, since eval cases
// require the field.
func EmitEvalCase(q *cq.CQ, set *deps.Set, db *instance.Instance, verdict string, answers [][]term.Term, note string) (string, error) {
	dump, err := db.Dump()
	if err != nil {
		return "", fmt.Errorf("gen: emitting eval case: %w", err)
	}
	ansStr := AnswerStrings(answers)
	if ansStr == nil {
		ansStr = [][]string{}
	}
	c := struct {
		Query    string     `json:"query"`
		Deps     string     `json:"deps,omitempty"`
		Database string     `json:"database"`
		Verdict  string     `json:"verdict"`
		Answers  [][]string `json:"answers"`
		Note     string     `json:"note,omitempty"`
	}{
		Query:    q.String(),
		Deps:     set.String(),
		Database: dump,
		Verdict:  verdict,
		Answers:  ansStr,
		Note:     note,
	}
	buf, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", fmt.Errorf("gen: emitting eval case: %w", err)
	}
	return string(buf) + "\n", nil
}
