// Package gen synthesizes workloads: the paper's worked examples
// (Examples 1–5, Figure 4) as executable objects, parametric query
// families (paths, stars, cycles, cliques, grids), and seeded random
// generators for queries, databases and dependency sets in each class
// the paper studies. Benchmarks and integration tests draw everything
// from here.
package gen

import (
	"fmt"
	"math/rand"

	"semacyclic/internal/cq"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func v(format string, args ...any) term.Term {
	return term.Var(fmt.Sprintf(format, args...))
}

// PathCQ returns the Boolean path query E(x0,x1), ..., E(x_{n-1},x_n).
func PathCQ(n int) *cq.CQ {
	if n < 1 {
		n = 1
	}
	atoms := make([]instance.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = instance.NewAtom("E", v("x%d", i), v("x%d", i+1))
	}
	return cq.MustNew(nil, atoms)
}

// StarCQ returns the Boolean star query E(c,x1), ..., E(c,xn).
func StarCQ(n int) *cq.CQ {
	if n < 1 {
		n = 1
	}
	atoms := make([]instance.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = instance.NewAtom("E", v("c"), v("x%d", i+1))
	}
	return cq.MustNew(nil, atoms)
}

// CycleCQ returns the Boolean directed n-cycle query (n ≥ 3 is cyclic).
func CycleCQ(n int) *cq.CQ {
	if n < 2 {
		n = 2
	}
	atoms := make([]instance.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = instance.NewAtom("E", v("x%d", i), v("x%d", (i+1)%n))
	}
	return cq.MustNew(nil, atoms)
}

// CliqueCQ returns the Boolean k-clique query over E.
func CliqueCQ(k int) *cq.CQ {
	if k < 2 {
		k = 2
	}
	var atoms []instance.Atom
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				atoms = append(atoms, instance.NewAtom("E", v("x%d", i), v("x%d", j)))
			}
		}
	}
	return cq.MustNew(nil, atoms)
}

// GridCQ returns the Boolean n×n grid query over H (horizontal) and V
// (vertical) edges: nodes g_{i,j}, 0 ≤ i,j ≤ n.
func GridCQ(n int) *cq.CQ {
	if n < 1 {
		n = 1
	}
	var atoms []instance.Atom
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			if j < n {
				atoms = append(atoms, instance.NewAtom("H", v("g%d_%d", i, j), v("g%d_%d", i, j+1)))
			}
			if i < n {
				atoms = append(atoms, instance.NewAtom("V", v("g%d_%d", i, j), v("g%d_%d", i+1, j)))
			}
		}
	}
	return cq.MustNew(nil, atoms)
}

// RandomAcyclicCQ grows a tree-shaped Boolean query of n binary atoms
// over the given predicate names (each atom shares exactly one variable
// with the tree built so far).
func RandomAcyclicCQ(r *rand.Rand, n int, preds []string) *cq.CQ {
	if n < 1 {
		n = 1
	}
	if len(preds) == 0 {
		preds = []string{"E"}
	}
	vars := []term.Term{v("t0"), v("t1")}
	atoms := []instance.Atom{instance.NewAtom(preds[r.Intn(len(preds))], vars[0], vars[1])}
	for i := 1; i < n; i++ {
		old := vars[r.Intn(len(vars))]
		fresh := v("t%d", len(vars))
		vars = append(vars, fresh)
		if r.Intn(2) == 0 {
			atoms = append(atoms, instance.NewAtom(preds[r.Intn(len(preds))], old, fresh))
		} else {
			atoms = append(atoms, instance.NewAtom(preds[r.Intn(len(preds))], fresh, old))
		}
	}
	return cq.MustNew(nil, atoms)
}

// RandomCQ returns a Boolean query of n binary atoms over nVars
// variables, with arbitrary (possibly cyclic) shape.
func RandomCQ(r *rand.Rand, n, nVars int, preds []string) *cq.CQ {
	if n < 1 {
		n = 1
	}
	if nVars < 2 {
		nVars = 2
	}
	if len(preds) == 0 {
		preds = []string{"E"}
	}
	var atoms []instance.Atom
	for i := 0; i < n; i++ {
		atoms = append(atoms, instance.NewAtom(preds[r.Intn(len(preds))],
			v("r%d", r.Intn(nVars)), v("r%d", r.Intn(nVars))))
	}
	return cq.MustNew(nil, atoms)
}

// RandomGraphDB returns a random database of size binary E-facts (and
// some unary P-facts) over a domain of the given size.
func RandomGraphDB(r *rand.Rand, size, domain int) *instance.Instance {
	if domain < 1 {
		domain = 1
	}
	db := instance.New()
	for i := 0; i < size; i++ {
		a := term.Const(fmt.Sprintf("c%d", r.Intn(domain)))
		b := term.Const(fmt.Sprintf("c%d", r.Intn(domain)))
		if r.Intn(6) == 0 {
			db.Add(instance.NewAtom("P", a))
		} else {
			db.Add(instance.NewAtom("E", a, b))
		}
	}
	db.Schema().Add("E", 2)
	db.Schema().Add("P", 1)
	return db
}
