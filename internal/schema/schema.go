// Package schema models relational schemas: finite sets of predicate
// symbols with fixed arities. Every component that mentions predicates
// (instances, queries, dependencies) validates against a Schema, and
// signature extraction lets tools infer a schema from input syntax.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Predicate is a relation symbol with its arity.
type Predicate struct {
	Name  string
	Arity int
}

// String renders the predicate as Name/Arity.
func (p Predicate) String() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Schema is a finite relational schema. The zero value is an empty,
// usable schema.
type Schema struct {
	preds map[string]int // name → arity
}

// New returns a schema containing the given predicates. It panics on a
// duplicate name with conflicting arity, which is always a programming
// error at construction time.
func New(preds ...Predicate) *Schema {
	s := &Schema{preds: make(map[string]int, len(preds))}
	for _, p := range preds {
		if err := s.Add(p.Name, p.Arity); err != nil {
			panic(err)
		}
	}
	return s
}

// Add registers a predicate. Re-adding with the same arity is a no-op;
// a conflicting arity is an error.
func (s *Schema) Add(name string, arity int) error {
	if name == "" {
		return fmt.Errorf("schema: empty predicate name")
	}
	if arity < 0 {
		return fmt.Errorf("schema: predicate %s has negative arity %d", name, arity)
	}
	if s.preds == nil {
		s.preds = make(map[string]int)
	}
	if a, ok := s.preds[name]; ok && a != arity {
		return fmt.Errorf("schema: predicate %s redeclared with arity %d (was %d)", name, arity, a)
	}
	s.preds[name] = arity
	return nil
}

// Arity returns the arity of the named predicate and whether it exists.
func (s *Schema) Arity(name string) (int, bool) {
	if s == nil || s.preds == nil {
		return 0, false
	}
	a, ok := s.preds[name]
	return a, ok
}

// Has reports whether the named predicate is in the schema.
func (s *Schema) Has(name string) bool {
	_, ok := s.Arity(name)
	return ok
}

// Len returns the number of predicates.
func (s *Schema) Len() int {
	if s == nil {
		return 0
	}
	return len(s.preds)
}

// MaxArity returns the largest arity in the schema (0 when empty).
func (s *Schema) MaxArity() int {
	max := 0
	for _, p := range s.Predicates() {
		if p.Arity > max {
			max = p.Arity
		}
	}
	return max
}

// Predicates returns all predicates sorted by name.
func (s *Schema) Predicates() []Predicate {
	if s == nil {
		return nil
	}
	out := make([]Predicate, 0, len(s.preds))
	for n, a := range s.preds {
		out = append(out, Predicate{Name: n, Arity: a})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clone returns an independent copy of s.
func (s *Schema) Clone() *Schema {
	out := &Schema{preds: make(map[string]int, s.Len())}
	if s != nil {
		for n, a := range s.preds {
			out.preds[n] = a
		}
	}
	return out
}

// Union merges the predicates of other into a fresh schema. An arity
// conflict is an error.
func (s *Schema) Union(other *Schema) (*Schema, error) {
	out := s.Clone()
	if other != nil {
		for n, a := range other.preds {
			if err := out.Add(n, a); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// String renders the schema as {P/2, Q/3}.
func (s *Schema) String() string {
	ps := s.Predicates()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return "{" + strings.Join(names, ", ") + "}"
}
