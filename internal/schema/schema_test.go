package schema

import "testing"

func TestNewAndArity(t *testing.T) {
	s := New(Predicate{"R", 2}, Predicate{"S", 3})
	if a, ok := s.Arity("R"); !ok || a != 2 {
		t.Errorf("Arity(R) = %d,%v", a, ok)
	}
	if _, ok := s.Arity("T"); ok {
		t.Error("unknown predicate reported present")
	}
	if !s.Has("S") || s.Has("T") {
		t.Error("Has wrong")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNewPanicsOnConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Predicate{"R", 2}, Predicate{"R", 3})
}

func TestAddValidation(t *testing.T) {
	var s Schema
	if err := s.Add("", 2); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Add("R", -1); err == nil {
		t.Error("negative arity accepted")
	}
	if err := s.Add("R", 2); err != nil {
		t.Errorf("add failed: %v", err)
	}
	if err := s.Add("R", 2); err != nil {
		t.Errorf("idempotent add failed: %v", err)
	}
	if err := s.Add("R", 3); err == nil {
		t.Error("conflicting arity accepted")
	}
}

func TestNilSchemaSafe(t *testing.T) {
	var s *Schema
	if s.Len() != 0 || s.Has("R") || s.MaxArity() != 0 || s.Predicates() != nil {
		t.Error("nil schema accessors not safe")
	}
}

func TestMaxArityAndPredicatesSorted(t *testing.T) {
	s := New(Predicate{"B", 5}, Predicate{"A", 1}, Predicate{"C", 3})
	if s.MaxArity() != 5 {
		t.Errorf("MaxArity = %d", s.MaxArity())
	}
	ps := s.Predicates()
	if len(ps) != 3 || ps[0].Name != "A" || ps[1].Name != "B" || ps[2].Name != "C" {
		t.Errorf("Predicates = %v", ps)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(Predicate{"R", 2})
	c := s.Clone()
	if err := c.Add("S", 1); err != nil {
		t.Fatal(err)
	}
	if s.Has("S") {
		t.Error("Clone shares storage")
	}
}

func TestUnion(t *testing.T) {
	a := New(Predicate{"R", 2})
	b := New(Predicate{"S", 1}, Predicate{"R", 2})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 2 || !u.Has("R") || !u.Has("S") {
		t.Errorf("Union = %v", u)
	}
	conflict := New(Predicate{"R", 3})
	if _, err := a.Union(conflict); err == nil {
		t.Error("conflicting union accepted")
	}
	if u2, err := a.Union(nil); err != nil || u2.Len() != 1 {
		t.Errorf("union with nil: %v %v", u2, err)
	}
}

func TestString(t *testing.T) {
	s := New(Predicate{"R", 2}, Predicate{"Q", 1})
	if got := s.String(); got != "{Q/1, R/2}" {
		t.Errorf("String = %q", got)
	}
	if got := (Predicate{"R", 2}).String(); got != "R/2" {
		t.Errorf("Predicate.String = %q", got)
	}
}
