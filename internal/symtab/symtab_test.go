package symtab

import (
	"testing"

	"semacyclic/internal/term"
)

func TestInternDense(t *testing.T) {
	tab := New()
	a := tab.Intern(term.Const("a"))
	b := tab.Intern(term.Const("b"))
	n := tab.Intern(term.NullTerm("1"))
	if a != 0 || b != 1 || n != 2 {
		t.Fatalf("ids not dense: %d %d %d", a, b, n)
	}
	if got := tab.Intern(term.Const("a")); got != a {
		t.Fatalf("re-intern changed id: %d vs %d", got, a)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	// Same name, different kind: distinct symbols.
	if tab.Intern(term.NullTerm("a")) == a {
		t.Fatal("null 'a' collided with const 'a'")
	}
}

func TestLookupAndDeintern(t *testing.T) {
	tab := New()
	c := term.Const("c")
	if _, ok := tab.Lookup(c); ok {
		t.Fatal("Lookup hit before Intern")
	}
	id := tab.Intern(c)
	got, ok := tab.Lookup(c)
	if !ok || got != id {
		t.Fatalf("Lookup = %d,%v want %d,true", got, ok, id)
	}
	if tab.Term(id) != c {
		t.Fatalf("Term(%d) = %v, want %v", id, tab.Term(id), c)
	}
	out := tab.AppendTerms(nil, []ID{id, id})
	if len(out) != 2 || out[0] != c || out[1] != c {
		t.Fatalf("AppendTerms = %v", out)
	}
}

func TestAppendID(t *testing.T) {
	buf := AppendID(nil, 0x01020304)
	want := []byte{1, 2, 3, 4}
	if string(buf) != string(want) {
		t.Fatalf("AppendID = %v, want %v", buf, want)
	}
	buf = AppendID(buf, 5)
	if len(buf) != 8 || buf[7] != 5 {
		t.Fatalf("AppendID append = %v", buf)
	}
}

func TestSortRowsAndRange(t *testing.T) {
	// Rows of width 2: (3,1) (1,2) (3,0) (1,2) (2,9)
	ids := []ID{3, 1, 1, 2, 3, 0, 1, 2, 2, 9}
	SortRows(ids, 2)
	want := []ID{1, 2, 1, 2, 2, 9, 3, 0, 3, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("SortRows = %v, want %v", ids, want)
		}
	}
	lo, hi := RowRange(ids, 2, []ID{1, 2})
	if lo != 0 || hi != 2 {
		t.Fatalf("RowRange(1,2) = %d,%d want 0,2", lo, hi)
	}
	lo, hi = RowRange(ids, 2, []ID{3, 0})
	if lo != 3 || hi != 4 {
		t.Fatalf("RowRange(3,0) = %d,%d want 3,4", lo, hi)
	}
	lo, hi = RowRange(ids, 2, []ID{0, 0})
	if lo != hi {
		t.Fatalf("RowRange(miss) = %d,%d want empty", lo, hi)
	}
	if !ContainsRow(ids, 2, []ID{2, 9}) {
		t.Fatal("ContainsRow missed present row")
	}
	if ContainsRow(ids, 2, []ID{2, 8}) {
		t.Fatal("ContainsRow found absent row")
	}
}

func TestZeroWidthRows(t *testing.T) {
	// Width 0 models Boolean projections: every probe matches.
	if !ContainsRow(nil, 0, nil) {
		t.Fatal("zero-width ContainsRow should hold")
	}
	lo, hi := RowRange(nil, 0, nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("zero-width RowRange = %d,%d", lo, hi)
	}
}
