// Package symtab implements the symbol-interning layer of the
// integer-coded evaluation hot path: a Table maps the constants,
// labelled nulls and predicate names touched by one decision (or one
// registry instance) to dense uint32 ids, so that the per-tuple work of
// the evaluators — semijoin filters, join keys, duplicate elimination,
// candidate pre-filtering — runs on machine integers instead of
// re-hashing and re-materializing strings per tuple touch.
//
// The string form exists only at the parse/print boundary: ids are
// assigned on first Intern, and the only way back to a term.Term is the
// de-intern helpers Term and AppendTerms, whose use inside the
// deterministic decision packages is policed by the semalint internleak
// analyzer (answer materialization and error rendering are the
// sanctioned, pragma-annotated sites).
//
// Determinism: id values depend on interning order, so they are never
// allowed to influence observable output — evaluators dedup and filter
// on ids (id equality is term equality; the mapping is injective) but
// order answers by the canonical string key at the boundary. Under that
// discipline two structurally equal runs give byte-identical output
// whatever ids they assigned.
package symtab

import (
	"sort"

	"semacyclic/internal/term"
)

// ID is a dense interned symbol id: the index of the symbol in its
// Table, starting at 0.
type ID uint32

// Table is one interner. The zero value is not usable; call New.
// A Table is safe for concurrent reads (Lookup, Term, Len) once no
// goroutine interns into it anymore; Intern itself is not safe for
// concurrent use.
type Table struct {
	ids   map[term.Term]ID `sem:"guardedby(owner)"`
	terms []term.Term      `sem:"guardedby(owner)"`
	ln    *lineageNode
}

// lineageNode records one step of a Clone chain. Nodes are tiny and
// never hold table data, so keeping the chain alive costs a few words
// per clone, not a map copy per ancestor.
type lineageNode struct {
	parent *lineageNode
	depth  uint32
}

// New returns an empty table.
func New() *Table {
	return &Table{ids: make(map[term.Term]ID), ln: &lineageNode{}}
}

// Clone returns an independent copy of the table that remembers its
// ancestry: the clone answers Extends(t) true, so incremental-view
// repair can extend the copy with fresh symbols while readers holding
// ids minted by t keep de-interning them to the same terms.
func (t *Table) Clone() *Table {
	return t.cloneWith(&lineageNode{parent: t.ln, depth: t.ln.depth + 1})
}

// CloneDetached is Clone without the ancestry link: the copy starts a
// fresh lineage, so Extends never relates it to the original (or vice
// versa). Overlay views use this — an overlay's table must never be
// mistaken for a step of its base instance's epoch chain.
func (t *Table) CloneDetached() *Table {
	return t.cloneWith(&lineageNode{})
}

func (t *Table) cloneWith(ln *lineageNode) *Table {
	ids := make(map[term.Term]ID, len(t.ids))
	for k, v := range t.ids {
		ids[k] = v
	}
	terms := make([]term.Term, len(t.terms))
	copy(terms, t.terms)
	return &Table{ids: ids, terms: terms, ln: ln}
}

// Extends reports whether t is old or a descendant of old along a
// Clone chain. When true, every id valid in old is valid in t and
// de-interns to the same term — the precondition that lets a cached
// reducer state built against old's ids be repaired against t instead
// of recomputed. Tables built independently (or via CloneDetached)
// never extend each other.
func (t *Table) Extends(old *Table) bool {
	if t == old {
		return true
	}
	if old == nil || old.ln == nil || t.ln == nil {
		return false
	}
	for n := t.ln; n != nil && n.depth >= old.ln.depth; n = n.parent {
		if n == old.ln {
			return true
		}
	}
	return false
}

// Intern returns the id of x, assigning the next dense id on first
// sight. Interning the same term twice returns the same id.
func (t *Table) Intern(x term.Term) ID {
	if id, ok := t.ids[x]; ok {
		return id
	}
	id := ID(len(t.terms))
	t.ids[x] = id
	t.terms = append(t.terms, x)
	return id
}

// Lookup returns the id of x without interning. A miss means x was
// never interned — for a table built from an instance, that x does not
// occur in the instance, so no fact can match it.
func (t *Table) Lookup(x term.Term) (ID, bool) {
	id, ok := t.ids[x]
	return id, ok
}

// Len returns the number of interned symbols; valid ids are [0, Len).
func (t *Table) Len() int { return len(t.terms) }

// Term de-interns one id. It is a boundary helper: decision packages
// may only call it on the print/error path (answer materialization,
// diagnostics), never to rebuild string keys inside a hot loop — the
// semalint internleak analyzer enforces this.
func (t *Table) Term(id ID) term.Term { return t.terms[id] }

// AppendTerms de-interns a tuple of ids, appending to dst. The same
// boundary discipline as Term applies.
func (t *Table) AppendTerms(dst []term.Term, ids []ID) []term.Term {
	for _, id := range ids {
		dst = append(dst, t.terms[id])
	}
	return dst
}

// AppendID appends the 4-byte big-endian encoding of id to buf: the
// integer dedup-key primitive. Probing a map[string]bool with
// string(buf) compiles to an allocation-free lookup, and the 4-byte-
// per-term keys are both shorter and cheaper to hash than the
// kind+name string keys they replace.
func AppendID(buf []byte, id ID) []byte {
	return append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
}

// rowSorter sorts a flat row-major matrix of w-wide id rows in
// lexicographic column order.
type rowSorter struct {
	ids []ID
	w   int
	tmp []ID
}

func (s *rowSorter) Len() int { return len(s.ids) / s.w }

func (s *rowSorter) Less(i, j int) bool {
	a := s.ids[i*s.w : (i+1)*s.w]
	b := s.ids[j*s.w : (j+1)*s.w]
	for k := 0; k < s.w; k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func (s *rowSorter) Swap(i, j int) {
	a := s.ids[i*s.w : (i+1)*s.w]
	b := s.ids[j*s.w : (j+1)*s.w]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

// SortRows sorts the flat row-major matrix ids (row width w > 0)
// lexicographically in place: the sorted-run construction step of a
// merge-join semijoin filter. len(ids) must be a multiple of w.
func SortRows(ids []ID, w int) {
	if w <= 0 || len(ids) <= w {
		return
	}
	sort.Sort(&rowSorter{ids: ids, w: w, tmp: make([]ID, w)})
}

// compareRow compares the row starting at sorted[i*w] against key.
func compareRow(sorted []ID, w, i int, key []ID) int {
	row := sorted[i*w : (i+1)*w]
	for k := 0; k < w; k++ {
		if row[k] != key[k] {
			if row[k] < key[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// RowRange returns the half-open row-index range [lo, hi) of the rows
// equal to key inside the SortRows-sorted matrix. Hand-rolled binary
// searches (no closures) keep the probe allocation-free.
func RowRange(sorted []ID, w int, key []ID) (lo, hi int) {
	if w <= 0 {
		return 0, len(sorted) // zero-width rows: everything matches
	}
	n := len(sorted) / w
	// Lower bound: first row >= key.
	a, b := 0, n
	for a < b {
		m := int(uint(a+b) >> 1)
		if compareRow(sorted, w, m, key) < 0 {
			a = m + 1
		} else {
			b = m
		}
	}
	lo = a
	// Upper bound: first row > key.
	b = n
	for a < b {
		m := int(uint(a+b) >> 1)
		if compareRow(sorted, w, m, key) <= 0 {
			a = m + 1
		} else {
			b = m
		}
	}
	return lo, a
}

// ContainsRow reports whether key occurs as a row of the
// SortRows-sorted matrix: the steady-state semijoin probe, one binary
// search over integers, zero allocations.
func ContainsRow(sorted []ID, w int, key []ID) bool {
	if w <= 0 {
		return len(sorted) >= 0 // zero-width rows: the empty row is present vacuously
	}
	n := len(sorted) / w
	a, b := 0, n
	for a < b {
		m := int(uint(a+b) >> 1)
		if compareRow(sorted, w, m, key) < 0 {
			a = m + 1
		} else {
			b = m
		}
	}
	return a < n && compareRow(sorted, w, a, key) == 0
}
