package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the forest as an indented tree, one node per line:
//
//	R(x,y)
//	└─ S(y,z)
//	   └─ T(z,w)
//
// Roots are printed in node order; children sorted by atom for
// deterministic output.
func (f *Forest) String() string {
	if f.Len() == 0 {
		return "(empty join forest)"
	}
	children := f.Children()
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			return CompareAtomsForRender(f.Atoms[kids[i]], f.Atoms[kids[j]]) < 0
		})
	}
	var b strings.Builder
	var rec func(i int, prefix string, last bool, root bool)
	rec = func(i int, prefix string, last bool, root bool) {
		if root {
			b.WriteString(f.Atoms[i].String())
		} else {
			b.WriteString(prefix)
			if last {
				b.WriteString("└─ ")
			} else {
				b.WriteString("├─ ")
			}
			b.WriteString(f.Atoms[i].String())
		}
		b.WriteByte('\n')
		kids := children[i]
		for k, ch := range kids {
			childPrefix := prefix
			if !root {
				if last {
					childPrefix += "   "
				} else {
					childPrefix += "│  "
				}
			}
			rec(ch, childPrefix, k == len(kids)-1, false)
		}
	}
	for _, r := range f.Roots() {
		rec(r, "", true, true)
	}
	return strings.TrimRight(b.String(), "\n")
}

// CompareAtomsForRender orders atoms for deterministic rendering; it
// simply delegates to the instance package's canonical order via the
// atoms' string forms, avoiding an import cycle in callers that only
// render.
func CompareAtomsForRender(a, b fmt.Stringer) int {
	return strings.Compare(a.String(), b.String())
}

// DOT renders the forest in Graphviz dot syntax, for visual inspection
// of witnesses (cmd/semacyc -join-tree-dot).
func (f *Forest) DOT() string {
	var b strings.Builder
	b.WriteString("digraph jointree {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for i, a := range f.Atoms {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, a.String())
	}
	for i, p := range f.Parent {
		if p >= 0 {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
