package hypergraph

import (
	"math/rand"
	"testing"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func v(n string) term.Term { return term.Var(n) }
func c(n string) term.Term { return term.Const(n) }

func atoms(as ...instance.Atom) []instance.Atom { return as }

func TestAcyclicBasics(t *testing.T) {
	cases := []struct {
		name string
		in   []instance.Atom
		want bool
	}{
		{"empty", nil, true},
		{"single", atoms(instance.NewAtom("R", v("x"), v("y"))), true},
		{"path", atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("S", v("y"), v("z")),
			instance.NewAtom("T", v("z"), v("w")),
		), true},
		{"triangle", atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("S", v("y"), v("z")),
			instance.NewAtom("T", v("z"), v("x")),
		), false},
		{"triangle covered by guard", atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("S", v("y"), v("z")),
			instance.NewAtom("T", v("z"), v("x")),
			instance.NewAtom("G", v("x"), v("y"), v("z")),
		), true},
		{"star", atoms(
			instance.NewAtom("R", v("x"), v("a")),
			instance.NewAtom("R", v("x"), v("b")),
			instance.NewAtom("R", v("x"), v("c")),
		), true},
		{"4-cycle", atoms(
			instance.NewAtom("E", v("a"), v("b")),
			instance.NewAtom("E", v("b"), v("c")),
			instance.NewAtom("E", v("c"), v("d")),
			instance.NewAtom("E", v("d"), v("a")),
		), false},
		{"disconnected acyclic", atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("S", v("z"), v("w")),
		), true},
		{"constants break cycles", atoms(
			// With 'k' constant the connectivity condition ignores it.
			instance.NewAtom("E", v("a"), c("k")),
			instance.NewAtom("E", c("k"), v("b")),
			instance.NewAtom("F", v("a"), v("b")),
		), true},
		{"duplicate atoms", atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("R", v("x"), v("y")),
		), true},
		{"example1 cyclic core", atoms(
			// Example 1 of the paper: Interest(x,z), Class(y,z), Owns(x,y).
			instance.NewAtom("Interest", v("x"), v("z")),
			instance.NewAtom("Class", v("y"), v("z")),
			instance.NewAtom("Owns", v("x"), v("y")),
		), false},
		{"example1 reformulated", atoms(
			instance.NewAtom("Interest", v("x"), v("z")),
			instance.NewAtom("Class", v("y"), v("z")),
		), true},
	}
	for _, tc := range cases {
		f, ok := GYO(tc.in)
		if ok != tc.want {
			t.Errorf("%s: acyclic = %v, want %v", tc.name, ok, tc.want)
			continue
		}
		if ok && f != nil {
			if err := f.Verify(); err != nil {
				t.Errorf("%s: join tree invalid: %v", tc.name, err)
			}
		}
	}
}

func TestForestShape(t *testing.T) {
	f, ok := GYO(atoms(
		instance.NewAtom("R", v("x"), v("y")),
		instance.NewAtom("S", v("y"), v("z")),
		instance.NewAtom("T", v("w")),
	))
	if !ok {
		t.Fatal("should be acyclic")
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	roots := f.Roots()
	if len(roots) != 2 {
		t.Errorf("Roots = %v (disconnected input needs 2 roots)", roots)
	}
	ch := f.Children()
	total := 0
	for _, kids := range ch {
		total += len(kids)
	}
	if total != f.Len()-len(roots) {
		t.Errorf("children count %d inconsistent with %d roots", total, len(roots))
	}
}

func TestVerifyCatchesBrokenTrees(t *testing.T) {
	// A hand-built "join tree" violating connectivity: y occurs at both
	// ends of a path whose middle lacks it.
	f := &Forest{
		Atoms: atoms(
			instance.NewAtom("R", v("x"), v("y")),
			instance.NewAtom("M", v("x"), v("z")),
			instance.NewAtom("S", v("z"), v("y")),
		),
		Parent: []int{1, -1, 1},
	}
	if err := f.Verify(); err == nil {
		t.Error("Verify accepted a non-join-tree")
	}
	// Parent cycle.
	f2 := &Forest{
		Atoms:  atoms(instance.NewAtom("R", v("x")), instance.NewAtom("S", v("x"))),
		Parent: []int{1, 0},
	}
	if err := f2.Verify(); err == nil {
		t.Error("Verify accepted a parent cycle")
	}
	// Length mismatch.
	f3 := &Forest{Atoms: atoms(instance.NewAtom("R", v("x"))), Parent: nil}
	if err := f3.Verify(); err == nil {
		t.Error("Verify accepted length mismatch")
	}
}

func TestCompactContainsMarkedAndBound(t *testing.T) {
	// A long path; mark two distant atoms.
	var as []instance.Atom
	names := []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	for i := 0; i+1 < len(names); i++ {
		as = append(as, instance.NewAtom("E", v(names[i]), v(names[i+1])))
	}
	f, ok := GYO(as)
	if !ok {
		t.Fatal("path should be acyclic")
	}
	marked := map[string]bool{as[0].Key(): true, as[6].Key(): true}
	j, err := Compact(f, marked)
	if err != nil {
		t.Fatal(err)
	}
	if len(j) > CompactBound(len(marked)) {
		t.Errorf("compact size %d exceeds bound %d", len(j), CompactBound(len(marked)))
	}
	got := make(map[string]bool)
	for _, a := range j {
		got[a.Key()] = true
	}
	for k := range marked {
		if !got[k] {
			t.Errorf("marked atom missing from compact result")
		}
	}
	if !IsAcyclic(j) {
		t.Error("compact result not acyclic")
	}
}

func TestCompactUnknownAtom(t *testing.T) {
	f, _ := GYO(atoms(instance.NewAtom("R", v("x"))))
	if _, err := Compact(f, map[string]bool{"nope": true}); err == nil {
		t.Error("unknown marked atom accepted")
	}
}

// randomAcyclicAtoms builds a random join-tree-shaped set of atoms by
// growing a tree of binary atoms sharing one variable with their parent.
func randomAcyclicAtoms(r *rand.Rand, n int) []instance.Atom {
	vars := []term.Term{v("r0"), v("r1")}
	out := []instance.Atom{instance.NewAtom("E", vars[0], vars[1])}
	for i := 2; i < n+2; i++ {
		shared := vars[r.Intn(len(vars))]
		fresh := term.Var(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		vars = append(vars, fresh)
		out = append(out, instance.NewAtom("E", shared, fresh))
	}
	return out
}

// Property: GYO accepts tree-shaped inputs, its forest verifies, and
// Compact of any marked subset stays acyclic within the bound.
func TestGYOCompactProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		as := randomAcyclicAtoms(r, 2+r.Intn(12))
		f, ok := GYO(as)
		if !ok {
			t.Fatalf("tree-shaped input rejected: %v", as)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("forest invalid: %v", err)
		}
		marked := make(map[string]bool)
		for _, a := range as {
			if r.Intn(3) == 0 {
				marked[a.Key()] = true
			}
		}
		if len(marked) == 0 {
			marked[as[0].Key()] = true
		}
		j, err := Compact(f, marked)
		if err != nil {
			t.Fatal(err)
		}
		if len(j) > CompactBound(len(marked)) {
			t.Fatalf("bound violated: %d > %d", len(j), CompactBound(len(marked)))
		}
		if !IsAcyclic(j) {
			t.Fatalf("compact result cyclic: %v", j)
		}
	}
}

// Property: adding a guard atom containing all variables of a cyclic
// core makes the hypergraph acyclic.
func TestGuardMakesAcyclicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k := 3 + r.Intn(4)
		var cyc []instance.Atom
		var all []term.Term
		for i := 0; i < k; i++ {
			all = append(all, term.Var(string(rune('a'+i))))
		}
		for i := 0; i < k; i++ {
			cyc = append(cyc, instance.NewAtom("E", all[i], all[(i+1)%k]))
		}
		if IsAcyclic(cyc) {
			t.Fatalf("%d-cycle reported acyclic", k)
		}
		guarded := append(append([]instance.Atom(nil), cyc...), instance.NewAtom("G", all...))
		if !IsAcyclic(guarded) {
			t.Fatalf("guarded %d-cycle reported cyclic", k)
		}
	}
}
