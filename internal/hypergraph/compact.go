package hypergraph

import (
	"fmt"

	"semacyclic/internal/instance"
)

// Compact implements the construction of Lemma 9 / Lemma 27: given a
// join forest f of an acyclic instance and a set of marked atoms (the
// homomorphic image of a query), it returns an acyclic subinstance J
// that contains every marked atom and has at most 2·|marked| atoms.
//
// J consists of the marked nodes, the roots of the subforest induced by
// the marked nodes and their ancestors, and the branching nodes of that
// subforest; contracting the unary chains between them preserves the
// join-tree property, so J is acyclic (a fact Verify-based tests
// re-check). The marked set is given by atom keys.
func Compact(f *Forest, marked map[string]bool) ([]instance.Atom, error) {
	n := f.Len()
	idxByKey := make(map[string]int, n)
	for i, a := range f.Atoms {
		idxByKey[a.Key()] = i
	}
	for k := range marked {
		if _, ok := idxByKey[k]; !ok {
			return nil, fmt.Errorf("hypergraph: marked atom not in forest")
		}
	}

	// inTq: marked nodes and all their ancestors.
	inTq := make([]bool, n)
	for k := range marked {
		for j := idxByKey[k]; j != -1; j = f.Parent[j] {
			if inTq[j] {
				break
			}
			inTq[j] = true
		}
	}

	// Children counts within Tq.
	childCount := make([]int, n)
	for i := 0; i < n; i++ {
		if !inTq[i] {
			continue
		}
		if p := f.Parent[i]; p >= 0 {
			childCount[p]++
		}
	}

	// Keep: marked ∪ roots-of-Tq ∪ branching nodes of Tq. (Leaves of Tq
	// are always marked, so they are covered by the marked set.)
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		if !inTq[i] {
			continue
		}
		isRoot := f.Parent[i] == -1 || !inTq[f.Parent[i]]
		if isRoot || childCount[i] >= 2 || marked[f.Atoms[i].Key()] {
			keep[i] = true
		}
	}

	var out []instance.Atom
	for i := 0; i < n; i++ {
		if keep[i] {
			out = append(out, f.Atoms[i])
		}
	}
	return out, nil
}

// CompactBound returns the worst-case size guarantee of Compact for a
// marked set of size m: 2·m (Lemma 9).
func CompactBound(m int) int { return 2 * m }
