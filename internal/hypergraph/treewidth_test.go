package hypergraph

import (
	"fmt"
	"testing"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func edgeAtom(a, b string) instance.Atom {
	return instance.NewAtom("E", term.Var(a), term.Var(b))
}

func TestTreewidthBasics(t *testing.T) {
	if got := TreewidthUpperBound(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
	// A path is a tree: width 1.
	path := []instance.Atom{edgeAtom("a", "b"), edgeAtom("b", "c"), edgeAtom("c", "d")}
	if got := TreewidthUpperBound(path); got != 1 {
		t.Errorf("path = %d, want 1", got)
	}
	// A cycle: width 2.
	cyc := []instance.Atom{edgeAtom("a", "b"), edgeAtom("b", "c"), edgeAtom("c", "d"), edgeAtom("d", "a")}
	if got := TreewidthUpperBound(cyc); got != 2 {
		t.Errorf("cycle = %d, want 2", got)
	}
	// Isolated vertex via unary atom: width 0 contribution.
	single := []instance.Atom{instance.NewAtom("P", term.Var("x"))}
	if got := TreewidthUpperBound(single); got != 0 {
		t.Errorf("single vertex = %d, want 0", got)
	}
}

func TestTreewidthClique(t *testing.T) {
	// Example 2's phenomenon: a k-clique has treewidth k-1.
	for k := 3; k <= 6; k++ {
		var atoms []instance.Atom
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				atoms = append(atoms, edgeAtom(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", j)))
			}
		}
		if got := TreewidthUpperBound(atoms); got != k-1 {
			t.Errorf("K%d = %d, want %d", k, got, k-1)
		}
	}
}

func TestTreewidthGrid(t *testing.T) {
	// Example 5's phenomenon: the n×n grid has treewidth n; min-fill is
	// allowed to overshoot slightly but must grow with n and never
	// undershoot.
	prev := 0
	for n := 1; n <= 4; n++ {
		var atoms []instance.Atom
		v := func(i, j int) string { return fmt.Sprintf("g%d_%d", i, j) }
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				if j < n {
					atoms = append(atoms, edgeAtom(v(i, j), v(i, j+1)))
				}
				if i < n {
					atoms = append(atoms, edgeAtom(v(i, j), v(i+1, j)))
				}
			}
		}
		got := TreewidthUpperBound(atoms)
		if got < n {
			t.Errorf("grid %d: bound %d below true treewidth %d", n, got, n)
		}
		if got < prev {
			t.Errorf("grid %d: bound %d decreased from %d", n, got, prev)
		}
		prev = got
	}
}

func TestTreewidthGuardedAtomsKeepWidthOfGuard(t *testing.T) {
	// One k-ary atom is a clique on its variables: width k-1.
	g := instance.NewAtom("G", term.Var("a"), term.Var("b"), term.Var("c"), term.Var("d"))
	if got := TreewidthUpperBound([]instance.Atom{g}); got != 3 {
		t.Errorf("guard = %d, want 3", got)
	}
}

func TestTreewidthIgnoresConstants(t *testing.T) {
	atoms := []instance.Atom{
		instance.NewAtom("E", term.Var("a"), term.Const("k")),
		instance.NewAtom("E", term.Const("k"), term.Var("b")),
	}
	if got := TreewidthUpperBound(atoms); got != 0 {
		t.Errorf("constants created width: %d", got)
	}
}
