// Package hypergraph implements the hypergraph view of instances and
// queries: the GYO ear-removal algorithm deciding acyclicity, explicit
// join trees (forests) with verification, and the compact acyclic
// subinstance construction of Lemma 9 / Lemma 27 of the paper.
//
// An instance is acyclic iff it admits a join tree: a tree whose nodes
// are the atoms such that, for every null (here: every non-constant
// term), the nodes containing it form a connected subtree. A CQ is
// acyclic iff the instance of its atoms (variables read as nulls) is.
package hypergraph

import (
	"fmt"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// Forest is a join forest over a set of distinct atoms: node i carries
// Atoms[i] and has parent Parent[i], or -1 for roots. A Forest produced
// by GYO satisfies the join-tree connectivity condition, which Verify
// re-checks from first principles.
type Forest struct {
	Atoms  []instance.Atom
	Parent []int
}

// flexible reports whether t participates in the connectivity
// condition: nulls and variables do, constants do not (the paper's
// definition requires connectedness for nulls only; variables in
// queries are read as nulls).
func flexible(t term.Term) bool { return !t.IsConst() }

func flexTerms(a instance.Atom) []term.Term {
	out := a.Terms()
	ts := out[:0]
	for _, t := range out {
		if flexible(t) {
			ts = append(ts, t)
		}
	}
	return ts
}

// GYO runs the Graham/Yu–Özsoyoğlu ear-removal algorithm over the
// given atoms (duplicates are merged). It returns a join forest and
// true when the hypergraph is acyclic, or nil and false otherwise.
func GYO(atoms []instance.Atom) (*Forest, bool) {
	// Deduplicate while preserving first-occurrence order.
	seen := make(map[string]bool, len(atoms))
	var nodes []instance.Atom
	for _, a := range atoms {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			nodes = append(nodes, a)
		}
	}
	n := len(nodes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return &Forest{}, true
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	vars := make([][]term.Term, n)
	for i, a := range nodes {
		vars[i] = flexTerms(a)
	}
	// occ[t] = number of alive edges containing t; occIn[t] lists the
	// edges containing t (stale entries filtered by the alive mask).
	occ := make(map[term.Term]int)
	occIn := make(map[term.Term][]int)
	for i := range nodes {
		for _, t := range vars[i] {
			occ[t]++
			occIn[t] = append(occIn[t], i)
		}
	}

	remaining := n
	for remaining > 1 {
		ear := -1
		earParent := -1
		for i := 0; i < n && ear < 0; i++ {
			if !alive[i] {
				continue
			}
			// W = flexible terms of i shared with another alive edge.
			var w []term.Term
			for _, t := range vars[i] {
				if occ[t] > 1 {
					w = append(w, t)
				}
			}
			if len(w) == 0 {
				// Isolated edge: becomes a root of its own component.
				ear, earParent = i, -1
				continue
			}
			// A parent must contain all of W, so it suffices to scan
			// the edges containing w[0].
			for _, j := range occIn[w[0]] {
				if j == i || !alive[j] {
					continue
				}
				if containsAll(vars[j], w) {
					ear, earParent = i, j
					break
				}
			}
		}
		if ear < 0 {
			return nil, false // no ear: cyclic
		}
		alive[ear] = false
		parent[ear] = earParent
		for _, t := range vars[ear] {
			occ[t]--
		}
		remaining--
	}
	return &Forest{Atoms: nodes, Parent: parent}, true
}

func containsAll(haystack, needles []term.Term) bool {
	for _, t := range needles {
		found := false
		for _, h := range haystack {
			if h == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IsAcyclic reports whether the atoms form an acyclic hypergraph.
func IsAcyclic(atoms []instance.Atom) bool {
	_, ok := GYO(atoms)
	return ok
}

// Len returns the number of nodes.
func (f *Forest) Len() int { return len(f.Atoms) }

// Roots returns the indices of root nodes.
func (f *Forest) Roots() []int {
	var out []int
	for i, p := range f.Parent {
		if p == -1 {
			out = append(out, i)
		}
	}
	return out
}

// Children returns the children adjacency lists.
func (f *Forest) Children() [][]int {
	ch := make([][]int, f.Len())
	for i, p := range f.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// Verify checks the join-forest invariant from first principles: the
// parent relation is a forest, and for every flexible term the nodes
// containing it induce a connected subgraph. It returns nil iff the
// invariant holds.
func (f *Forest) Verify() error {
	n := f.Len()
	if len(f.Parent) != n {
		return fmt.Errorf("hypergraph: parent/atom length mismatch")
	}
	// Forest shape: no cycles through parent pointers.
	for i := 0; i < n; i++ {
		seenSteps := 0
		for j := i; j != -1; j = f.Parent[j] {
			if j < -1 || j >= n {
				return fmt.Errorf("hypergraph: parent index %d out of range", j)
			}
			seenSteps++
			if seenSteps > n {
				return fmt.Errorf("hypergraph: cycle through node %d", i)
			}
		}
	}
	// Connectivity per flexible term: count, for each term, the number
	// of "component tops": nodes containing t whose parent does not
	// contain t. Connected iff exactly one top per tree-component of t's
	// occurrence set — and since t must be connected overall, exactly
	// one top in total.
	contains := func(i int, t term.Term) bool {
		for _, u := range f.Atoms[i].Args {
			if u == t {
				return true
			}
		}
		return false
	}
	occ := make(map[term.Term][]int)
	for i, a := range f.Atoms {
		for _, t := range flexTerms(a) {
			occ[t] = append(occ[t], i)
		}
	}
	for t, nodesWith := range occ {
		tops := 0
		for _, i := range nodesWith {
			p := f.Parent[i]
			if p == -1 || !contains(p, t) {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("hypergraph: term %s occurs in %d disconnected parts", t, tops)
		}
	}
	return nil
}
