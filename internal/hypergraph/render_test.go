package hypergraph

import (
	"strings"
	"testing"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func TestForestString(t *testing.T) {
	f, ok := GYO([]instance.Atom{
		instance.NewAtom("R", term.Var("x"), term.Var("y")),
		instance.NewAtom("S", term.Var("y"), term.Var("z")),
		instance.NewAtom("T", term.Var("z"), term.Var("w")),
	})
	if !ok {
		t.Fatal("path should be acyclic")
	}
	out := f.String()
	for _, want := range []string{"R(?x,?y)", "S(?y,?z)", "T(?z,?w)", "└─"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Exactly one root line (no leading tree glyph).
	lines := strings.Split(out, "\n")
	roots := 0
	for _, l := range lines {
		if !strings.Contains(l, "─") {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("roots in rendering = %d:\n%s", roots, out)
	}
}

func TestForestStringBranching(t *testing.T) {
	// Three one-variable children can only attach to the guard, so any
	// join tree of this shape must branch.
	f, ok := GYO([]instance.Atom{
		instance.NewAtom("G", term.Var("x"), term.Var("y"), term.Var("z")),
		instance.NewAtom("A", term.Var("x")),
		instance.NewAtom("B", term.Var("y")),
		instance.NewAtom("C", term.Var("z")),
	})
	if !ok {
		t.Fatal("guarded star should be acyclic")
	}
	out := f.String()
	if !strings.Contains(out, "├─") {
		t.Errorf("branching glyph missing:\n%s", out)
	}
}

func TestForestStringEmpty(t *testing.T) {
	f := &Forest{}
	if got := f.String(); got != "(empty join forest)" {
		t.Errorf("empty = %q", got)
	}
}

func TestForestDOT(t *testing.T) {
	f, ok := GYO([]instance.Atom{
		instance.NewAtom("R", term.Var("x"), term.Var("y")),
		instance.NewAtom("S", term.Var("y"), term.Var("z")),
	})
	if !ok {
		t.Fatal("acyclic expected")
	}
	dot := f.DOT()
	for _, want := range []string{"digraph jointree", "R(?x,?y)", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %q in DOT:\n%s", want, dot)
		}
	}
}
