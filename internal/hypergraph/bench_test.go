package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"

	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

func benchTreeAtoms(n int) []instance.Atom {
	r := rand.New(rand.NewSource(1))
	vars := []term.Term{term.Var("v0"), term.Var("v1")}
	out := []instance.Atom{instance.NewAtom("E", vars[0], vars[1])}
	for i := 2; i < n+2; i++ {
		shared := vars[r.Intn(len(vars))]
		fresh := term.Var(fmt.Sprintf("v%d", i))
		vars = append(vars, fresh)
		out = append(out, instance.NewAtom("E", shared, fresh))
	}
	return out
}

func BenchmarkGYO(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		atoms := benchTreeAtoms(n)
		b.Run(fmt.Sprintf("atoms=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := GYO(atoms); !ok {
					b.Fatal("tree rejected")
				}
			}
		})
	}
}

func BenchmarkGYOCyclicRejection(b *testing.B) {
	var atoms []instance.Atom
	const k = 50
	for i := 0; i < k; i++ {
		atoms = append(atoms, instance.NewAtom("E",
			term.Var(fmt.Sprintf("c%d", i)), term.Var(fmt.Sprintf("c%d", (i+1)%k))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := GYO(atoms); ok {
			b.Fatal("cycle accepted")
		}
	}
}

func BenchmarkTreewidthGrid(b *testing.B) {
	var atoms []instance.Atom
	const n = 6
	v := func(i, j int) term.Term { return term.Var(fmt.Sprintf("g%d_%d", i, j)) }
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			if j < n {
				atoms = append(atoms, instance.NewAtom("H", v(i, j), v(i, j+1)))
			}
			if i < n {
				atoms = append(atoms, instance.NewAtom("V", v(i, j), v(i+1, j)))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreewidthUpperBound(atoms)
	}
}
