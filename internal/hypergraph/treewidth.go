package hypergraph

import (
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// TreewidthUpperBound computes an upper bound on the treewidth of the
// Gaifman graph of the atoms (vertices: non-constant terms; edges:
// co-occurrence in an atom), by the classic min-fill elimination
// heuristic. The bound is exact on trees (1), cycles (2) and other
// small graphs, and never below the true treewidth.
//
// The paper reasons with treewidth twice: Example 2 (the chase under a
// non-guarded tgd produces an n-clique, treewidth n−1) and Example 5 /
// Figure 4 (the key chase contains an n×n grid, treewidth n). This
// function is the measurable proxy those experiments report.
func TreewidthUpperBound(atoms []instance.Atom) int {
	// Build the Gaifman graph.
	adj := make(map[term.Term]map[term.Term]bool)
	addEdge := func(a, b term.Term) {
		if adj[a] == nil {
			adj[a] = make(map[term.Term]bool)
		}
		adj[a][b] = true
	}
	for _, a := range atoms {
		ts := flexTerms(a)
		for _, t := range ts {
			if adj[t] == nil {
				adj[t] = make(map[term.Term]bool)
			}
		}
		for i := range ts {
			for j := i + 1; j < len(ts); j++ {
				addEdge(ts[i], ts[j])
				addEdge(ts[j], ts[i])
			}
		}
	}
	if len(adj) == 0 {
		return 0
	}

	// Min-fill elimination: repeatedly remove the vertex whose
	// neighbourhood needs the fewest fill-in edges; the width is the
	// largest neighbourhood size at elimination time.
	width := 0
	for len(adj) > 0 {
		best := term.Term{}
		bestFill, bestDeg := -1, -1
		for v, nb := range adj {
			fill := 0
			keys := neighbours(nb)
			for i := range keys {
				for j := i + 1; j < len(keys); j++ {
					if !adj[keys[i]][keys[j]] {
						fill++
					}
				}
			}
			if bestFill == -1 || fill < bestFill || (fill == bestFill && len(nb) < bestDeg) {
				best, bestFill, bestDeg = v, fill, len(nb)
			}
		}
		nb := neighbours(adj[best])
		if len(nb) > width {
			width = len(nb)
		}
		// Connect the neighbourhood into a clique, then remove best.
		for i := range nb {
			for j := i + 1; j < len(nb); j++ {
				addEdge(nb[i], nb[j])
				addEdge(nb[j], nb[i])
			}
		}
		for _, u := range nb {
			delete(adj[u], best)
		}
		delete(adj, best)
	}
	return width
}

func neighbours(nb map[term.Term]bool) []term.Term {
	out := make([]term.Term, 0, len(nb))
	for u := range nb {
		out = append(out, u)
	}
	return out
}
