// Package semacyclic is a library for semantic acyclicity of
// conjunctive queries under database constraints, implementing
// "Semantic Acyclicity Under Constraints" (Barceló, Gottlob, Pieris,
// PODS 2016) end to end:
//
//   - deciding whether a CQ is equivalent to an acyclic CQ over all
//     databases satisfying a set of tgds or egds (SemAc), with verified
//     acyclic witnesses;
//   - the substrate the paper builds on: conjunctive queries, the
//     chase for tgds and egds, CQ containment under guarded / linear /
//     inclusion / non-recursive / sticky tgds and egds, UCQ rewriting,
//     acyclicity via GYO join trees, Yannakakis evaluation, cores;
//   - acyclic-CQ approximations (§8.2), UCQ semantic acyclicity (§8.1);
//   - fixed-parameter tractable evaluation of semantically acyclic
//     queries (Prop. 24) and the polynomial existential 1-cover game
//     evaluation for guarded tgds (Thm. 25).
//
// The quickest start:
//
//	q, _ := semacyclic.ParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
//	Σ, _ := semacyclic.ParseDependencies("Interest(x,z), Class(y,z) -> Owns(x,y).")
//	res, _ := semacyclic.Decide(q, Σ, semacyclic.Options{})
//	fmt.Println(res.Verdict, res.Witness) // yes q(x,y) :- Interest(x,z), Class(y,z)
//
// The facade re-exports the stable surface of the internal packages;
// power users needing lower-level control (chase options, rewriting
// budgets) reach them through the option structs re-exported here.
package semacyclic

import (
	"semacyclic/internal/chase"
	"semacyclic/internal/containment"
	"semacyclic/internal/core"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/hom"
	"semacyclic/internal/hypergraph"
	"semacyclic/internal/instance"
	"semacyclic/internal/obs"
	"semacyclic/internal/rewrite"
	"semacyclic/internal/term"
	"semacyclic/internal/yannakakis"
)

// Re-exported data types. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Term is a constant, labelled null or variable.
	Term = term.Term
	// Subst is a substitution over terms.
	Subst = term.Subst
	// Atom is a predicate applied to terms.
	Atom = instance.Atom
	// Instance is an indexed set of atoms (a database when finite and
	// variable-free, which Instance enforces).
	Instance = instance.Instance
	// Delta is one batch of inserts and deletes, as journalled by
	// Instance.ApplyDelta and bridged by Instance.DeltaSince.
	Delta = instance.Delta
	// DeltaResult reports an applied batch: the new epoch and the net
	// insert/delete counts after set semantics collapse the batch.
	DeltaResult = instance.DeltaResult
	// Overlay is a copy-on-write what-if view: a hypothetical delta
	// layered over a shared base instance without copying or mutating
	// it (Instance.NewOverlay).
	Overlay = instance.Overlay
	// CQ is a conjunctive query.
	CQ = cq.CQ
	// UCQ is a union of conjunctive queries.
	UCQ = cq.UCQ
	// TGD is a tuple-generating dependency.
	TGD = deps.TGD
	// EGD is an equality-generating dependency.
	EGD = deps.EGD
	// FD is a functional dependency.
	FD = deps.FD
	// Dependencies is a finite set of tgds and egds.
	Dependencies = deps.Set
	// Class names a syntactic dependency class from the paper.
	Class = deps.Class

	// Options tunes Decide / Approximate / DecideUCQ / NewEvaluator.
	Options = core.Options
	// Result is a semantic-acyclicity decision with its witness.
	Result = core.Result
	// UCQResult is the UCQ-variant decision.
	UCQResult = core.UCQResult
	// Approximation is a maximally contained acyclic CQ (§8.2).
	Approximation = core.Approximation
	// Verdict is yes / no / unknown.
	Verdict = core.Verdict
	// Evaluator evaluates a semantically acyclic query in O(|D|) per
	// database after a one-time reformulation (Prop. 24).
	Evaluator = core.Evaluator
	// Plan is a compiled evaluation plan for a fixed (q, Σ): the
	// decision, method selection and join forest happen once; Execute
	// then runs per database.
	Plan = core.Plan
	// EvalOptions tunes one Plan.Execute run (cancellation, index
	// ablation).
	EvalOptions = core.EvalOptions
	// ReducerState is the retained per-plan semijoin state that
	// Plan.ExecuteIncremental repairs from an instance's delta journal
	// instead of recomputing.
	ReducerState = core.ReducerState
	// Certificate is a re-checkable proof behind a Yes decision.
	Certificate = core.Certificate

	// ContainmentOptions tunes CQ containment under constraints.
	ContainmentOptions = containment.Options
	// ContainmentDecision is a containment verdict with definitiveness.
	ContainmentDecision = containment.Decision
	// ChaseOptions tunes the chase engine.
	ChaseOptions = chase.Options
	// ChaseResult is a chase outcome.
	ChaseResult = chase.Result
	// RewriteOptions tunes UCQ rewriting.
	RewriteOptions = rewrite.Options
	// RewriteResult is a computed UCQ rewriting.
	RewriteResult = rewrite.Result
	// JoinForest is an explicit join forest certifying acyclicity.
	JoinForest = hypergraph.Forest

	// Stats is the per-decision observability snapshot on Result.Stats;
	// see the internal/obs package comment for the DETERMINISTIC vs
	// NONDETERMINISTIC field classification.
	Stats = obs.Stats
	// ChaseStats observes one chase run (also on ChaseResult.Stats).
	ChaseStats = obs.ChaseStats
	// SearchStats observes the complete-search layer.
	SearchStats = obs.SearchStats
	// ContainmentStats observes the verification side of the search.
	ContainmentStats = obs.ContainmentStats
	// HomStats is a delta of the homomorphism-engine counters.
	HomStats = obs.HomStats
	// LayerStats is one decision layer's record.
	LayerStats = obs.LayerStats
	// EvalStats observes one Plan.Execute run (rows scanned, index
	// hits, semijoin work).
	EvalStats = obs.EvalStats
)

// Verdict values of Decide.
const (
	Yes     = core.Yes
	No      = core.No
	Unknown = core.Unknown
)

// Evaluation method tags accepted by CompilePlan.
const (
	MethodAuto        = core.MethodAuto
	MethodYannakakis  = core.MethodYannakakis
	MethodGuardedGame = core.MethodGuardedGame
	MethodEGDGame     = core.MethodEGDGame
	MethodGeneric     = core.MethodGeneric
)

// Dependency classes (Section 2 of the paper).
const (
	ClassFull          = deps.ClassFull
	ClassGuarded       = deps.ClassGuarded
	ClassLinear        = deps.ClassLinear
	ClassInclusion     = deps.ClassInclusion
	ClassNonRecursive  = deps.ClassNonRecursive
	ClassSticky        = deps.ClassSticky
	ClassWeaklyAcyc    = deps.ClassWeaklyAcyc
	ClassWeaklyGuarded = deps.ClassWeaklyGuarded
	ClassWeaklySticky  = deps.ClassWeaklySticky
	ClassKeys          = deps.ClassKeys
	ClassK2            = deps.ClassK2
	ClassFD            = deps.ClassFD
	ClassUnaryFD       = deps.ClassUnaryFD
)

// Const returns the constant named name.
func Const(name string) Term { return term.Const(name) }

// Var returns the variable named name.
func Var(name string) Term { return term.Var(name) }

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return instance.NewAtom(pred, args...) }

// NewInstance returns an empty instance.
func NewInstance() *Instance { return instance.New() }

// NewDatabase builds a database from ground atoms.
func NewDatabase(atoms ...Atom) (*Instance, error) { return instance.FromAtoms(atoms...) }

// ParseQuery parses a conjunctive query, e.g.
// "q(x,y) :- R(x,z), S(z,y), T('a',x).".
func ParseQuery(input string) (*CQ, error) { return cq.Parse(input) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(input string) *CQ { return cq.MustParse(input) }

// ParseUCQ parses one query per line into a union.
func ParseUCQ(input string) (*UCQ, error) { return cq.ParseUCQ(input) }

// ParseDependencies parses a dependency set, one per line:
// tgds "R(x,y) -> S(y,z)." and egds "R(x,y), R(x,z) -> y = z.".
func ParseDependencies(input string) (*Dependencies, error) { return deps.Parse(input) }

// ParseDatabase parses ground atoms like "R(a,b). S(c)." into a
// database; arguments are constants (quotes optional).
func ParseDatabase(input string) (*Instance, error) { return instance.Parse(input) }

// ParseAtoms parses ground atoms in the ParseDatabase syntax into a
// bare atom slice — the input format of Instance.ApplyDelta and
// Instance.NewOverlay batches. Unlike ParseDatabase, the empty input
// is fine (an empty batch side).
func ParseAtoms(input string) ([]Atom, error) { return instance.ParseAtoms(input) }

// ErrArityClash is wrapped by Instance.ApplyDelta and
// Instance.NewOverlay when a batch atom's arity contradicts the
// instance schema or another batch atom; match with errors.Is.
var ErrArityClash = instance.ErrArityClash

// FormatDatabase renders a database in the ground-atom syntax that
// ParseDatabase reads back (one "R(a,b)." statement per line). It
// fails on instances holding nulls or syntax-delimiter constants.
func FormatDatabase(db *Instance) (string, error) { return db.Dump() }

// MustParseDependencies is ParseDependencies that panics on error.
func MustParseDependencies(input string) *Dependencies { return deps.MustParse(input) }

// Decide determines whether q is semantically acyclic under the
// dependencies: is there an acyclic q' with q ≡Σ q'? A Yes result
// carries a verified witness.
func Decide(q *CQ, set *Dependencies, opt Options) (*Result, error) {
	return core.Decide(q, set, opt)
}

// DecideUCQ is the UCQ variant of Decide (§8.1).
func DecideUCQ(u *UCQ, set *Dependencies, opt Options) (*UCQResult, error) {
	return core.DecideUCQ(u, set, opt)
}

// Approximate computes an acyclic CQ maximally contained in q under
// the dependencies (§8.2); equivalent to q when q is semantically
// acyclic.
func Approximate(q *CQ, set *Dependencies, opt Options) (*Approximation, error) {
	return core.Approximate(q, set, opt)
}

// NewEvaluator reformulates a semantically acyclic q once and then
// evaluates it in time linear in each database (Prop. 24).
func NewEvaluator(q *CQ, set *Dependencies, opt Options) (*Evaluator, error) {
	return core.NewEvaluator(q, set, opt)
}

// CompilePlan compiles an evaluation plan for (q, Σ): the semantic-
// acyclicity decision and method selection happen once, Plan.Execute
// then runs per database. method is one of the Method constants or ""
// (auto).
func CompilePlan(q *CQ, set *Dependencies, opt Options, method string) (*Plan, error) {
	return core.CompilePlan(q, set, opt, method)
}

// EvaluateGuardedGame evaluates a semantically acyclic q over D ⊨ Σ
// for guarded Σ via the existential 1-cover game (Thm. 25), without
// computing a reformulation.
func EvaluateGuardedGame(q *CQ, db *Instance) [][]Term {
	return core.EvaluateGuardedGame(q, db)
}

// EvaluateEGDGame evaluates a semantically acyclic q over D ⊨ Σ for a
// pure egd set via chase-then-game (Section 7, closing remark).
func EvaluateEGDGame(q *CQ, set *Dependencies, db *Instance) ([][]Term, error) {
	return core.EvaluateEGDGame(q, set, db)
}

// IsAcyclic reports whether the query is acyclic (admits a join tree).
func IsAcyclic(q *CQ) bool { return hypergraph.IsAcyclic(q.Atoms) }

// TreewidthUpperBound bounds the treewidth of the query's Gaifman
// graph from above (min-fill heuristic); the measure Examples 2 and 5
// of the paper reason with.
func TreewidthUpperBound(q *CQ) int { return hypergraph.TreewidthUpperBound(q.Atoms) }

// JoinTree returns a join forest for the query's atoms, or ok=false
// when the query is cyclic.
func JoinTree(q *CQ) (*JoinForest, bool) { return hypergraph.GYO(q.Atoms) }

// Core returns the core (minimal equivalent) of q.
func Core(q *CQ) *CQ { return hom.Core(q) }

// Contains decides q ⊆Σ q' under the dependencies.
func Contains(q, qp *CQ, set *Dependencies, opt ContainmentOptions) (ContainmentDecision, error) {
	return containment.Contains(q, qp, set, opt)
}

// Equivalent decides q ≡Σ q' under the dependencies.
func Equivalent(q, qp *CQ, set *Dependencies, opt ContainmentOptions) (ContainmentDecision, error) {
	return containment.Equivalent(q, qp, set, opt)
}

// ContainsUCQ decides Q ⊆Σ Q' for unions of conjunctive queries.
func ContainsUCQ(q, qp *UCQ, set *Dependencies, opt ContainmentOptions) (ContainmentDecision, error) {
	return containment.ContainsUCQ(q, qp, set, opt)
}

// EquivalentUCQ decides Q ≡Σ Q' for unions of conjunctive queries.
func EquivalentUCQ(q, qp *UCQ, set *Dependencies, opt ContainmentOptions) (ContainmentDecision, error) {
	return containment.EquivalentUCQ(q, qp, set, opt)
}

// EvaluateUCQ computes Q(D) as the union of the disjuncts' answers,
// deduplicated, using the generic evaluator per disjunct.
func EvaluateUCQ(u *UCQ, db *Instance) [][]Term {
	seen := make(map[string]bool)
	var out [][]Term
	for _, d := range u.Disjuncts {
		for _, tup := range hom.Evaluate(d, db) {
			key := ""
			for _, t := range tup {
				key += string(rune(t.K)) + t.Name + "\x00"
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, tup)
			}
		}
	}
	return out
}

// Chase chases a database with the dependencies.
func Chase(db *Instance, set *Dependencies, opt ChaseOptions) (*ChaseResult, error) {
	return chase.Run(db, set, opt)
}

// ChaseQuery chases a query per Lemma 1, returning also the frozen
// head tuple.
func ChaseQuery(q *CQ, set *Dependencies, opt ChaseOptions) (*ChaseResult, []Term, error) {
	return chase.Query(q, set, opt)
}

// Satisfies reports whether the database satisfies the dependencies.
func Satisfies(db *Instance, set *Dependencies) bool { return chase.Satisfies(db, set) }

// RewriteUCQ computes the UCQ rewriting of q under a tgd set
// (Definition 2; complete for non-recursive and sticky sets).
func RewriteUCQ(q *CQ, set *Dependencies, opt RewriteOptions) (*RewriteResult, error) {
	return rewrite.Rewrite(q, set, opt)
}

// Evaluate computes q(D) with the generic (NP-hard) backtracking
// evaluator; use EvaluateAcyclic or an Evaluator for tractable paths.
func Evaluate(q *CQ, db *Instance) [][]Term { return hom.Evaluate(q, db) }

// EvaluateAcyclic computes q(D) for an acyclic q with Yannakakis'
// linear-time algorithm.
func EvaluateAcyclic(q *CQ, db *Instance) ([][]Term, error) {
	return yannakakis.Evaluate(q, db)
}

// Classes returns every dependency class of the paper the set belongs to.
func Classes(set *Dependencies) []Class { return set.Classes() }

// Explain reconstructs a re-checkable certificate (both Lemma 1
// homomorphisms plus the witness's join tree) for a Yes decision.
func Explain(q *CQ, set *Dependencies, res *Result, opt Options) (*Certificate, error) {
	return core.Explain(q, set, res, opt)
}

// ContainmentViaSemAc realizes Proposition 5 of the paper: for
// body-connected tgds and Boolean connected queries with q acyclic and
// q' not semantically acyclic under Σ, q ⊆Σ q' iff q ∧ q' is
// semantically acyclic under Σ. See internal/core for the premise
// contract.
func ContainmentViaSemAc(q, qp *CQ, set *Dependencies, opt Options) (*Result, error) {
	return core.ContainmentViaSemAc(q, qp, set, opt)
}
