package semacyclic

import (
	"math/rand"
	"testing"

	"semacyclic/internal/corpus"
	"semacyclic/internal/gen"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// requireRoundTrip asserts Parse(Dump(I)) == I and Dump stability.
func requireRoundTrip(t *testing.T, db *instance.Instance, label string) {
	t.Helper()
	dump, err := db.Dump()
	if err != nil {
		t.Fatalf("%s: Dump: %v", label, err)
	}
	back, err := instance.Parse(dump)
	if err != nil {
		t.Fatalf("%s: Parse(Dump): %v\n%s", label, err, dump)
	}
	if !back.Equal(db) {
		t.Fatalf("%s: Parse(Dump(I)) != I:\n%s\nvs\n%s", label, back, db)
	}
	dump2, err := back.Dump()
	if err != nil || dump2 != dump {
		t.Fatalf("%s: Dump not stable: %v", label, err)
	}
}

// TestInstanceRoundTripOnWorkloads: Parse(Dump(I)) == I on generated
// graph databases and on every workload class's databases, chased and
// raw.
func TestInstanceRoundTripOnWorkloads(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		requireRoundTrip(t, gen.RandomGraphDB(r, 40, 8), "graph db")
	}
	for _, class := range gen.WorkloadClasses {
		_, set, raw := gen.RandomWorkload(r, class, 2, 3, 10, 4)
		requireRoundTrip(t, raw, class+" raw")
		sat, err := corpus.SatisfyingDB(raw, set, 3000)
		if err != nil {
			continue // egd clash on a random database is legitimate
		}
		requireRoundTrip(t, sat, class+" chased")
	}
}

// TestInstanceRoundTripNastyConstants: instances built from an
// alphabet of delimiter-heavy constants survive the round trip.
func TestInstanceRoundTripNastyConstants(t *testing.T) {
	nasty := []string{
		"a", "v1.2", "it's", `back\slash`, "", " ", "a,b", "(c)", "'",
		`\`, "new\nline", "tab\t", "日本", "é", "a.b.c.", "--", "''",
	}
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		db := instance.New()
		for j := 0; j < 1+r.Intn(6); j++ {
			if err := db.Add(instance.NewAtom("R",
				term.Const(nasty[r.Intn(len(nasty))]),
				term.Const(nasty[r.Intn(len(nasty))]))); err != nil {
				t.Fatal(err)
			}
		}
		requireRoundTrip(t, db, "nasty")
	}
}
