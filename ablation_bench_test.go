// Ablation benchmarks for the design choices DESIGN.md calls out: what
// each mechanism buys, measured by switching it off.
package semacyclic

import (
	"fmt"
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/containment"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/gen"
	"semacyclic/internal/hom"
	"semacyclic/internal/rewrite"
	"semacyclic/internal/yannakakis"
)

// BenchmarkAblationRewriteCoreReduction compares the rewriting closure
// with and without per-disjunct core reduction on a recursive sticky
// set, where reduction is what makes the closure converge: without it
// the run hits the disjunct budget.
func BenchmarkAblationRewriteCoreReduction(b *testing.B) {
	set := deps.MustParse("P(x), P(y) -> R(x,y).\nR(x,y) -> P(z), Q(x,z).")
	q := cq.MustParse("q :- R(u,v).")
	b.Run("with-core-reduction", func(b *testing.B) {
		var disjuncts int
		var complete bool
		for i := 0; i < b.N; i++ {
			rw, err := rewrite.Rewrite(q, set, rewrite.Options{MaxDisjuncts: 200, MaxAtomsPerCQ: 6})
			if err != nil {
				b.Fatal(err)
			}
			disjuncts, complete = len(rw.UCQ.Disjuncts), rw.Complete
		}
		b.ReportMetric(float64(disjuncts), "disjuncts")
		b.ReportMetric(boolMetric(complete), "complete")
	})
	b.Run("without-core-reduction", func(b *testing.B) {
		var disjuncts int
		var complete bool
		for i := 0; i < b.N; i++ {
			rw, err := rewrite.Rewrite(q, set, rewrite.Options{MaxDisjuncts: 200, MaxAtomsPerCQ: 6, NoCoreReduction: true})
			if err != nil {
				b.Fatal(err)
			}
			disjuncts, complete = len(rw.UCQ.Disjuncts), rw.Complete
		}
		b.ReportMetric(float64(disjuncts), "disjuncts")
		b.ReportMetric(boolMetric(complete), "complete")
	})
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationRestrictedVsObliviousChase compares the two chase
// variants on a set whose oblivious chase does strictly more work.
func BenchmarkAblationRestrictedVsObliviousChase(b *testing.B) {
	set := deps.MustParse("E(x,y) -> S(x,w).\nE(x,y) -> E(y,x).")
	db := NewInstance()
	for i := 0; i < 30; i++ {
		db.Add(NewAtom("E", Const(fmt.Sprintf("a%d", i)), Const(fmt.Sprintf("a%d", (i+1)%30))))
	}
	for _, oblivious := range []bool{false, true} {
		name := "restricted"
		if oblivious {
			name = "oblivious"
		}
		b.Run(name, func(b *testing.B) {
			var atoms int
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(db, set, chase.Options{Oblivious: oblivious})
				if err != nil {
					b.Fatal(err)
				}
				atoms = res.Instance.Len()
			}
			b.ReportMetric(float64(atoms), "chase-atoms")
		})
	}
}

// BenchmarkAblationYannakakisVsBacktracking shows the asymptotic
// separation the acyclic reformulation buys: Boolean path queries of
// growing length over a graph engineered so that the generic
// backtracking join explores an exponential number of partial matches
// while the semijoin reducer stays linear.
func BenchmarkAblationYannakakisVsBacktracking(b *testing.B) {
	// A layered dead-end graph: `levels` ranks of `fan` nodes with all
	// edges between consecutive ranks. A path query one edge longer
	// than the rank count has no match, but backtracking only discovers
	// that after exploring Θ(fan^length) partial paths; the semijoin
	// reducer empties the relations in one linear pass.
	const fan, levels = 5, 8
	db := NewInstance()
	for l := 0; l+1 < levels; l++ {
		for i := 0; i < fan; i++ {
			for j := 0; j < fan; j++ {
				db.Add(NewAtom("E", Const(fmt.Sprintf("n%d_%d", l, i)), Const(fmt.Sprintf("n%d_%d", l+1, j))))
			}
		}
	}
	for _, length := range []int{4, 6, 8} {
		q := gen.PathCQ(length)
		if length >= levels {
			// Only the over-long query is unsatisfiable; shorter ones
			// keep the comparison honest on satisfiable inputs.
			if ok := func() bool { v, _ := yannakakis.EvaluateBool(q, db); return v }(); ok {
				b.Fatal("test graph construction broken")
			}
		}
		b.Run(fmt.Sprintf("backtracking/len=%d", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hom.EvaluateBool(q, db)
			}
		})
		b.Run(fmt.Sprintf("yannakakis/len=%d", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := yannakakis.EvaluateBool(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContainmentMethods compares the chase-based and
// rewriting-based containment procedures where both apply (NR sets).
func BenchmarkAblationContainmentMethods(b *testing.B) {
	set := deps.MustParse("A(x) -> B(x,z).\nB(x,y) -> C(y).")
	q := cq.MustParse("q :- A(u), B(u,v).")
	qp := cq.MustParse("q :- C(w).")
	for _, m := range []containment.Method{containment.MethodChase, containment.MethodRewrite} {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dec, err := containment.Contains(q, qp, set, containment.Options{Method: m})
				if err != nil || !dec.Holds {
					b.Fatalf("containment lost: %+v %v", dec, err)
				}
			}
		})
	}
}

// BenchmarkAblationChaseDepthBudget shows the cost/completeness
// trade-off of the guarded chase depth budget.
func BenchmarkAblationChaseDepthBudget(b *testing.B) {
	set := deps.MustParse("Person(x) -> Parent(x,y).\nParent(x,y) -> Person(y).")
	q := cq.MustParse("q(x) :- Person(x).")
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var atoms int
			for i := 0; i < b.N; i++ {
				res, _, err := chase.Query(q, set, chase.Options{MaxDepth: depth})
				if err != nil {
					b.Fatal(err)
				}
				atoms = res.Instance.Len()
			}
			b.ReportMetric(float64(atoms), "chase-atoms")
		})
	}
}
