package semacyclic

import "testing"

func TestParseDatabase(t *testing.T) {
	db, err := ParseDatabase("R(a,b). R(b,c). S('quoted'). T().")
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Errorf("Len = %d", db.Len())
	}
	if !db.Has(NewAtom("S", Const("quoted"))) {
		t.Error("quoted constant lost")
	}
	if !db.Has(NewAtom("T")) {
		t.Error("nullary atom lost")
	}

	bad := []string{
		"",
		"R(a,b",
		"noparens.",
		"(a).",
		"R(a,,b).",
		"R(a). R(a,b).", // arity conflict
	}
	for _, in := range bad {
		if _, err := ParseDatabase(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestFacadeContainmentViaSemAc(t *testing.T) {
	sigma := MustParseDependencies("E(x,y), E(y,z) -> F(x,z).")
	loop := MustParseQuery("q :- E(v,v).")
	triangle := MustParseQuery("q :- E(a,b), E(b,c), E(c,a).")
	res, err := ContainmentViaSemAc(loop, triangle, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Yes {
		t.Errorf("Prop 5 bridge = %+v", res)
	}
}

func TestFacadeWeakClasses(t *testing.T) {
	full := MustParseDependencies("E(x,y), E(y,z) -> E(x,z).")
	found := map[Class]bool{}
	for _, c := range Classes(full) {
		found[c] = true
	}
	if !found[ClassWeaklyGuarded] || !found[ClassWeaklySticky] {
		t.Errorf("Classes = %v", Classes(full))
	}
}

func TestFacadeUCQHelpers(t *testing.T) {
	set := MustParseDependencies("A(x) -> B(x).")
	q, err := ParseUCQ("q(x) :- A(x).\nq(x) :- B(x).")
	if err != nil {
		t.Fatal(err)
	}
	qp, err := ParseUCQ("q(x) :- B(x).")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := EquivalentUCQ(q, qp, set, ContainmentOptions{})
	if err != nil || !dec.Holds {
		t.Errorf("EquivalentUCQ = %+v, %v", dec, err)
	}
	sub, err := ContainsUCQ(qp, q, set, ContainmentOptions{})
	if err != nil || !sub.Holds {
		t.Errorf("ContainsUCQ = %+v, %v", sub, err)
	}

	db, err := ParseDatabase("A(a). B(b).")
	if err != nil {
		t.Fatal(err)
	}
	got := EvaluateUCQ(q, db)
	if len(got) != 2 {
		t.Errorf("EvaluateUCQ = %v", got)
	}
	// Deduplication across disjuncts.
	q2, _ := ParseUCQ("q(x) :- A(x).\nq(x) :- A(x), B(y).")
	if got := EvaluateUCQ(q2, db); len(got) != 1 {
		t.Errorf("EvaluateUCQ dedup = %v", got)
	}
}

func TestFacadeTreewidth(t *testing.T) {
	tri := MustParseQuery("q :- E(x,y), E(y,z), E(z,x).")
	if got := TreewidthUpperBound(tri); got != 2 {
		t.Errorf("triangle treewidth bound = %d", got)
	}
	path := MustParseQuery("q :- E(x,y), E(y,z).")
	if got := TreewidthUpperBound(path); got != 1 {
		t.Errorf("path treewidth bound = %d", got)
	}
}

func TestFormatDatabaseRoundTrip(t *testing.T) {
	db, err := ParseDatabase("R(a,b). S(c). T(a, 'x y').")
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDatabase(out)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", out, err)
	}
	if !db.Equal(back) {
		t.Errorf("round trip changed database:\n%s\nvs\n%s", db, back)
	}
}
