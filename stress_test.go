package semacyclic

import (
	"math/rand"
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/containment"
	"semacyclic/internal/core"
	"semacyclic/internal/gen"
	"semacyclic/internal/hom"
	"semacyclic/internal/yannakakis"
)

// TestStressDecideSweep runs the full decision pipeline across a wide
// random workload sweep and cross-validates every positive verdict.
// Skipped with -short; the long form is part of the default CI run.
func TestStressDecideSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped in -short mode")
	}
	r := rand.New(rand.NewSource(4242))
	stats := map[core.Verdict]int{}
	for trial := 0; trial < 250; trial++ {
		var set *Dependencies
		switch trial % 4 {
		case 0:
			set = gen.RandomInclusionDeps(r, 1+r.Intn(3), 2)
		case 1:
			set = gen.RandomNonRecursive(r, 1+r.Intn(3))
		case 2:
			set = gen.RandomKeys2(r, 1+r.Intn(2), 2)
		default:
			set = gen.RandomSticky(r, 1+r.Intn(2), 2)
		}
		preds := binaryPreds(set)
		var q *CQ
		if trial%2 == 0 {
			q = gen.RandomCQ(r, 2+r.Intn(4), 2+r.Intn(3), preds)
		} else {
			q = gen.RandomAcyclicCQ(r, 2+r.Intn(4), preds)
		}
		res, err := core.Decide(q, set, core.Options{
			SearchBudget:       400,
			SkipCompleteSearch: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v (q=%s Σ=%s)", trial, err, q, set)
		}
		stats[res.Verdict]++
		if res.Verdict != core.Yes {
			continue
		}
		// Positive verdicts: witness must be acyclic, within any claimed
		// bound, and equivalent per an independent containment check.
		if !IsAcyclic(res.Witness) {
			t.Fatalf("trial %d: cyclic witness %s", trial, res.Witness)
		}
		if res.Bound > 0 && res.Witness.Size() > res.Bound {
			t.Fatalf("trial %d: witness size %d exceeds bound %d", trial, res.Witness.Size(), res.Bound)
		}
		eq, err := containment.Equivalent(q, res.Witness, set, containment.Options{})
		if err != nil || !eq.Holds {
			t.Fatalf("trial %d: witness fails recheck: %+v %v", trial, eq, err)
		}
		// Spot-check semantics on one random model when the chase
		// terminates.
		db := gen.RandomGraphDB(r, 15, 4)
		for _, p := range set.Schema().Predicates() {
			db.Schema().Add(p.Name, p.Arity)
		}
		closed, err := chase.Run(db, set, chase.Options{MaxSteps: 3000, MaxAtoms: 9000})
		if err != nil || !closed.Complete {
			continue
		}
		want := hom.Evaluate(q, closed.Instance)
		got, err := yannakakis.Evaluate(res.Witness, closed.Instance)
		if err != nil {
			t.Fatalf("trial %d: witness evaluation failed: %v", trial, err)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: answer counts differ: %d vs %d\nq=%s\nw=%s\nΣ=%s",
				trial, len(want), len(got), q, res.Witness, set)
		}
	}
	if stats[core.Yes] == 0 {
		t.Error("sweep produced no positive verdicts; generators too weak")
	}
	t.Logf("verdicts: yes=%d no=%d unknown=%d", stats[core.Yes], stats[core.No], stats[core.Unknown])
}

func binaryPreds(set *Dependencies) []string {
	var out []string
	for _, p := range set.Schema().Predicates() {
		if p.Arity == 2 {
			out = append(out, p.Name)
		}
	}
	if len(out) == 0 {
		out = []string{"E"}
	}
	return out
}
