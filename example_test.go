package semacyclic_test

import (
	"fmt"

	semacyclic "semacyclic"
)

// The paper's Example 1: a cyclic core with an acyclic equivalent
// under the compulsive-collector constraint.
func ExampleDecide() {
	q := semacyclic.MustParseQuery(
		"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")

	res, err := semacyclic.Decide(q, sigma, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	fmt.Println(res.Witness)
	// Output:
	// yes
	// q(x,y) :- Interest(x,z), Class(y,z)
}

func ExampleIsAcyclic() {
	triangle := semacyclic.MustParseQuery("q :- E(x,y), E(y,z), E(z,x).")
	path := semacyclic.MustParseQuery("q :- E(x,y), E(y,z).")
	fmt.Println(semacyclic.IsAcyclic(triangle), semacyclic.IsAcyclic(path))
	// Output: false true
}

func ExampleChaseQuery() {
	// Lemma 1: chase the frozen query; the tgd materializes Owns.
	q := semacyclic.MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")
	res, _, err := semacyclic.ChaseQuery(q, sigma, semacyclic.ChaseOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instance.Len(), res.Complete)
	// Output: 3 true
}

func ExampleRewriteUCQ() {
	sigma := semacyclic.MustParseDependencies("A(x) -> B(x).")
	q := semacyclic.MustParseQuery("q(x) :- B(x).")
	rw, err := semacyclic.RewriteUCQ(q, sigma, semacyclic.RewriteOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rw.UCQ)
	// Output:
	// q(x) :- B(x)
	// q(x) :- A(x)
}

func ExampleEvaluateAcyclic() {
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). E(b,d).")
	if err != nil {
		panic(err)
	}
	q := semacyclic.MustParseQuery("q(x,z) :- E(x,y), E(y,z).")
	answers, err := semacyclic.EvaluateAcyclic(q, db)
	if err != nil {
		panic(err)
	}
	for _, t := range answers {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Output:
	// a c
	// a d
}

func ExampleApproximate() {
	// The triangle has no acyclic equivalent; §8.2 still yields a
	// maximally contained acyclic query for quick answers.
	tri := semacyclic.MustParseQuery("q :- E(x,y), E(y,z), E(z,x).")
	ap, err := semacyclic.Approximate(tri, &semacyclic.Dependencies{}, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(ap.Equivalent)
	fmt.Println(ap.Query)
	// Output:
	// false
	// q() :- E(x,x)
}

func ExampleClasses() {
	sigma := semacyclic.MustParseDependencies("R(x,y) -> S(y,z).")
	for _, c := range semacyclic.Classes(sigma) {
		fmt.Println(c)
	}
	// Output:
	// guarded
	// linear
	// inclusion
	// non-recursive
	// sticky
	// weakly-acyclic
	// weakly-guarded
	// weakly-sticky
}

func ExampleCore() {
	q := semacyclic.MustParseQuery("q(x) :- E(x,y), E(x,z).")
	fmt.Println(semacyclic.Core(q).Size())
	// Output: 1
}

func ExampleDecideUCQ() {
	// §8.1: the cyclic triangle disjunct is redundant (every triangle
	// has an edge), so the union is semantically acyclic.
	u, _ := semacyclic.ParseUCQ("q :- E(x,y), E(y,z), E(z,x).\nq :- E(x,y).")
	res, err := semacyclic.DecideUCQ(u, &semacyclic.Dependencies{}, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	fmt.Println(res.Redundant)
	// Output:
	// yes
	// [true false]
}

// Theorem 25: for guarded Σ, a semantically acyclic query is evaluated
// in polynomial time via the existential 1-cover game — no witness is
// ever computed. The caller guarantees the premises (Σ guarded, q
// semantically acyclic under Σ, the database satisfies Σ).
func ExampleEvaluateGuardedGame() {
	// Σ = E(x,y) -> P(x) is linear, hence guarded; q is semantically
	// acyclic under it; the database satisfies it.
	q := semacyclic.MustParseQuery("q(x) :- E(x,y), P(x).")
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). P(a). P(b).")
	if err != nil {
		panic(err)
	}
	for _, t := range semacyclic.EvaluateGuardedGame(q, db) {
		fmt.Println(t[0].Name)
	}
	// Unordered output:
	// a
	// b
}

// Section 7 (closing remark): under a pure egd set, evaluation chases
// the query once and then plays the 1-cover game per tuple.
func ExampleEvaluateEGDGame() {
	// The key makes E's second position a function of the first, so the
	// two-atom query collapses to a single atom — semantically acyclic.
	q := semacyclic.MustParseQuery("q(x,y) :- E(x,y), E(x,z).")
	sigma := semacyclic.MustParseDependencies("E(x,y), E(x,z) -> y = z.")
	db, err := semacyclic.ParseDatabase("E(a,b). E(c,d).")
	if err != nil {
		panic(err)
	}
	answers, err := semacyclic.EvaluateEGDGame(q, sigma, db)
	if err != nil {
		panic(err)
	}
	for _, t := range answers {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Unordered output:
	// a b
	// c d
}

// Evaluate is the generic (NP-hard in general) backtracking evaluator —
// the always-sound fallback every fast path is checked against.
func ExampleEvaluate() {
	q := semacyclic.MustParseQuery("q(x,z) :- E(x,y), E(y,z).")
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). E(b,d).")
	if err != nil {
		panic(err)
	}
	for _, t := range semacyclic.Evaluate(q, db) {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Unordered output:
	// a c
	// a d
}

// ApplyDelta mutates an instance atomically under set semantics: the
// whole batch is validated first, duplicates and no-ops collapse, and
// the epoch advances by exactly one however large the batch is —
// incremental evaluators holding reducer state catch up from the
// journal instead of recomputing.
func ExampleInstance_ApplyDelta() {
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). E(c,d).")
	if err != nil {
		panic(err)
	}
	before := db.Epoch()

	// E(a,b) is already present (no-op insert); deleting E(x,y) twice
	// in the batch collapses to one effective delete.
	ins, err := semacyclic.ParseAtoms("E(d,e). E(a,b).")
	if err != nil {
		panic(err)
	}
	del, err := semacyclic.ParseAtoms("E(b,c). E(b,c).")
	if err != nil {
		panic(err)
	}
	res, err := db.ApplyDelta(ins, del)
	if err != nil {
		panic(err)
	}
	fmt.Println("inserted:", res.Inserted, "deleted:", res.Deleted)
	fmt.Println("atoms:", db.Len(), "epoch advanced by:", res.Epoch-before)
	// Output:
	// inserted: 1 deleted: 1
	// atoms: 3 epoch advanced by: 1
}

// NewOverlay answers a what-if question — "what would q return if
// this delta were applied?" — without copying or mutating the base
// instance. The overlay shares the base's interned view for untouched
// relations, so its cost is proportional to the delta.
func ExampleInstance_NewOverlay() {
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c).")
	if err != nil {
		panic(err)
	}
	q := semacyclic.MustParseQuery("q(x,z) :- E(x,y), E(y,z).")
	plan, err := semacyclic.CompilePlan(q, &semacyclic.Dependencies{},
		semacyclic.Options{}, semacyclic.MethodYannakakis)
	if err != nil {
		panic(err)
	}

	ins, err := semacyclic.ParseAtoms("E(c,d).")
	if err != nil {
		panic(err)
	}
	ov, err := db.NewOverlay(ins, nil)
	if err != nil {
		panic(err)
	}
	what, _, err := plan.ExecuteOverlay(ov, semacyclic.EvalOptions{})
	if err != nil {
		panic(err)
	}
	base, _, err := plan.Execute(db, semacyclic.EvalOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("hypothetical answers:", len(what))
	fmt.Println("base answers:        ", len(base), " base atoms:", db.Len())
	// Output:
	// hypothetical answers: 2
	// base answers:         1  base atoms: 2
}

func ExampleExplain() {
	q := semacyclic.MustParseQuery(
		"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")
	res, _ := semacyclic.Decide(q, sigma, semacyclic.Options{})
	cert, err := semacyclic.Explain(q, sigma, res, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(cert.Witness)
	fmt.Println(cert.JoinTree.Verify() == nil)
	// Output:
	// q(x,y) :- Interest(x,z), Class(y,z)
	// true
}
