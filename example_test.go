package semacyclic_test

import (
	"fmt"

	semacyclic "semacyclic"
)

// The paper's Example 1: a cyclic core with an acyclic equivalent
// under the compulsive-collector constraint.
func ExampleDecide() {
	q := semacyclic.MustParseQuery(
		"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")

	res, err := semacyclic.Decide(q, sigma, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	fmt.Println(res.Witness)
	// Output:
	// yes
	// q(x,y) :- Interest(x,z), Class(y,z)
}

func ExampleIsAcyclic() {
	triangle := semacyclic.MustParseQuery("q :- E(x,y), E(y,z), E(z,x).")
	path := semacyclic.MustParseQuery("q :- E(x,y), E(y,z).")
	fmt.Println(semacyclic.IsAcyclic(triangle), semacyclic.IsAcyclic(path))
	// Output: false true
}

func ExampleChaseQuery() {
	// Lemma 1: chase the frozen query; the tgd materializes Owns.
	q := semacyclic.MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")
	res, _, err := semacyclic.ChaseQuery(q, sigma, semacyclic.ChaseOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Instance.Len(), res.Complete)
	// Output: 3 true
}

func ExampleRewriteUCQ() {
	sigma := semacyclic.MustParseDependencies("A(x) -> B(x).")
	q := semacyclic.MustParseQuery("q(x) :- B(x).")
	rw, err := semacyclic.RewriteUCQ(q, sigma, semacyclic.RewriteOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(rw.UCQ)
	// Output:
	// q(x) :- B(x)
	// q(x) :- A(x)
}

func ExampleEvaluateAcyclic() {
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). E(b,d).")
	if err != nil {
		panic(err)
	}
	q := semacyclic.MustParseQuery("q(x,z) :- E(x,y), E(y,z).")
	answers, err := semacyclic.EvaluateAcyclic(q, db)
	if err != nil {
		panic(err)
	}
	for _, t := range answers {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Output:
	// a c
	// a d
}

func ExampleApproximate() {
	// The triangle has no acyclic equivalent; §8.2 still yields a
	// maximally contained acyclic query for quick answers.
	tri := semacyclic.MustParseQuery("q :- E(x,y), E(y,z), E(z,x).")
	ap, err := semacyclic.Approximate(tri, &semacyclic.Dependencies{}, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(ap.Equivalent)
	fmt.Println(ap.Query)
	// Output:
	// false
	// q() :- E(x,x)
}

func ExampleClasses() {
	sigma := semacyclic.MustParseDependencies("R(x,y) -> S(y,z).")
	for _, c := range semacyclic.Classes(sigma) {
		fmt.Println(c)
	}
	// Output:
	// guarded
	// linear
	// inclusion
	// non-recursive
	// sticky
	// weakly-acyclic
	// weakly-guarded
	// weakly-sticky
}

func ExampleCore() {
	q := semacyclic.MustParseQuery("q(x) :- E(x,y), E(x,z).")
	fmt.Println(semacyclic.Core(q).Size())
	// Output: 1
}

func ExampleDecideUCQ() {
	// §8.1: the cyclic triangle disjunct is redundant (every triangle
	// has an edge), so the union is semantically acyclic.
	u, _ := semacyclic.ParseUCQ("q :- E(x,y), E(y,z), E(z,x).\nq :- E(x,y).")
	res, err := semacyclic.DecideUCQ(u, &semacyclic.Dependencies{}, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	fmt.Println(res.Redundant)
	// Output:
	// yes
	// [true false]
}

// Theorem 25: for guarded Σ, a semantically acyclic query is evaluated
// in polynomial time via the existential 1-cover game — no witness is
// ever computed. The caller guarantees the premises (Σ guarded, q
// semantically acyclic under Σ, the database satisfies Σ).
func ExampleEvaluateGuardedGame() {
	// Σ = E(x,y) -> P(x) is linear, hence guarded; q is semantically
	// acyclic under it; the database satisfies it.
	q := semacyclic.MustParseQuery("q(x) :- E(x,y), P(x).")
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). P(a). P(b).")
	if err != nil {
		panic(err)
	}
	for _, t := range semacyclic.EvaluateGuardedGame(q, db) {
		fmt.Println(t[0].Name)
	}
	// Unordered output:
	// a
	// b
}

// Section 7 (closing remark): under a pure egd set, evaluation chases
// the query once and then plays the 1-cover game per tuple.
func ExampleEvaluateEGDGame() {
	// The key makes E's second position a function of the first, so the
	// two-atom query collapses to a single atom — semantically acyclic.
	q := semacyclic.MustParseQuery("q(x,y) :- E(x,y), E(x,z).")
	sigma := semacyclic.MustParseDependencies("E(x,y), E(x,z) -> y = z.")
	db, err := semacyclic.ParseDatabase("E(a,b). E(c,d).")
	if err != nil {
		panic(err)
	}
	answers, err := semacyclic.EvaluateEGDGame(q, sigma, db)
	if err != nil {
		panic(err)
	}
	for _, t := range answers {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Unordered output:
	// a b
	// c d
}

// Evaluate is the generic (NP-hard in general) backtracking evaluator —
// the always-sound fallback every fast path is checked against.
func ExampleEvaluate() {
	q := semacyclic.MustParseQuery("q(x,z) :- E(x,y), E(y,z).")
	db, err := semacyclic.ParseDatabase("E(a,b). E(b,c). E(b,d).")
	if err != nil {
		panic(err)
	}
	for _, t := range semacyclic.Evaluate(q, db) {
		fmt.Println(t[0].Name, t[1].Name)
	}
	// Unordered output:
	// a c
	// a d
}

func ExampleExplain() {
	q := semacyclic.MustParseQuery(
		"q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y).")
	sigma := semacyclic.MustParseDependencies(
		"Interest(x,z), Class(y,z) -> Owns(x,y).")
	res, _ := semacyclic.Decide(q, sigma, semacyclic.Options{})
	cert, err := semacyclic.Explain(q, sigma, res, semacyclic.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(cert.Witness)
	fmt.Println(cert.JoinTree.Verify() == nil)
	// Output:
	// q(x,y) :- Interest(x,z), Class(y,z)
	// true
}
