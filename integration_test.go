package semacyclic

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"semacyclic/internal/chase"
	"semacyclic/internal/containment"
	"semacyclic/internal/core"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/gen"
	"semacyclic/internal/hom"
	"semacyclic/internal/instance"
	"semacyclic/internal/rewrite"
	"semacyclic/internal/term"
	"semacyclic/internal/yannakakis"
)

// randomDBForSchema builds a random ground database over the set's
// predicates (plus the query's), for semantic spot-checks.
func randomDBForSchema(r *rand.Rand, set *deps.Set, q *cq.CQ, size, domain int) *instance.Instance {
	sch, err := set.Schema().Union(q.Schema())
	if err != nil {
		panic(err)
	}
	preds := sch.Predicates()
	db := instance.New()
	for i := 0; i < size; i++ {
		p := preds[r.Intn(len(preds))]
		args := make([]term.Term, p.Arity)
		for j := range args {
			args[j] = term.Const(fmt.Sprintf("d%d", r.Intn(domain)))
		}
		db.Add(instance.NewAtom(p.Name, args...))
	}
	// Make sure every predicate exists in the schema even if no fact
	// landed on it.
	for _, p := range preds {
		db.Schema().Add(p.Name, p.Arity)
	}
	return db
}

// closeUnder chases db to a model of the set; returns nil when the egd
// chase fails (inconsistent random data) or the chase does not
// terminate within budget.
func closeUnder(db *instance.Instance, set *deps.Set) *instance.Instance {
	res, err := chase.Run(db, set, chase.Options{MaxSteps: 20000, MaxAtoms: 50000})
	if err != nil || !res.Complete {
		return nil
	}
	return res.Instance
}

// TestIntegrationWitnessSemantics: on random terminating-chase
// dependency sets and random queries, every Yes witness must agree with
// the original query on random models of Σ.
func TestIntegrationWitnessSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	trials := 0
	yeses := 0
	for trials < 120 {
		trials++
		var set *deps.Set
		switch trials % 3 {
		case 0:
			set = gen.RandomNonRecursive(r, 1+r.Intn(3))
		case 1:
			set = gen.RandomKeys2(r, 1+r.Intn(2), 2)
		default:
			set = deps.MustParse("P(x), P(y) -> R(x,y).") // Example 2 shape
		}
		var q *cq.CQ
		if r.Intn(2) == 0 {
			q = gen.RandomCQ(r, 2+r.Intn(4), 2+r.Intn(3), predsOf(set))
		} else {
			q = gen.RandomAcyclicCQ(r, 2+r.Intn(4), predsOf(set))
		}
		res, err := core.Decide(q, set, core.Options{SearchBudget: 800, SkipCompleteSearch: true})
		if err != nil {
			t.Fatalf("decide error on q=%s Σ=%s: %v", q, set, err)
		}
		if res.Verdict != core.Yes {
			continue
		}
		yeses++
		// Semantic spot-check on three random models.
		for m := 0; m < 3; m++ {
			db := closeUnder(randomDBForSchema(r, set, q, 10+r.Intn(25), 4), set)
			if db == nil {
				continue
			}
			want := hom.Evaluate(q, db)
			got := hom.Evaluate(res.Witness, db)
			if len(want) != len(got) {
				t.Fatalf("witness disagrees on a model:\nq=%s\nw=%s\nΣ=%s\nD=%s\nq(D)=%v\nw(D)=%v",
					q, res.Witness, set, db, want, got)
			}
			for i := range want {
				for j := range want[i] {
					if want[i][j] != got[i][j] {
						t.Fatalf("witness answers differ at %d: %v vs %v", i, want[i], got[i])
					}
				}
			}
			// And Yannakakis on the witness agrees too.
			fast, err := yannakakis.Evaluate(res.Witness, db)
			if err != nil {
				t.Fatalf("witness not evaluable by yannakakis: %v", err)
			}
			if len(fast) != len(want) {
				t.Fatalf("yannakakis on witness: %d vs %d answers", len(fast), len(want))
			}
		}
	}
	if yeses == 0 {
		t.Error("fuzz produced no positive decisions; generator too weak")
	}
}

func predsOf(set *deps.Set) []string {
	var out []string
	for _, p := range set.Schema().Predicates() {
		if p.Arity == 2 {
			out = append(out, p.Name)
		}
	}
	if len(out) == 0 {
		out = []string{"E"}
	}
	return out
}

// TestIntegrationContainmentMethodsAgree: chase-based and rewriting-
// based containment must coincide on non-recursive sets.
func TestIntegrationContainmentMethodsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	agreeChecks := 0
	for trial := 0; trial < 150; trial++ {
		set := gen.RandomNonRecursive(r, 1+r.Intn(3))
		preds := predsOf(set)
		q := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds)
		qp := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds)

		viaChase, err := containment.Contains(q, qp, set, containment.Options{Method: containment.MethodChase})
		if err != nil {
			t.Fatal(err)
		}
		viaRewrite, err := containment.Contains(q, qp, set, containment.Options{Method: containment.MethodRewrite})
		if err != nil {
			t.Fatal(err)
		}
		if !viaChase.Definitive || !viaRewrite.Definitive {
			continue
		}
		agreeChecks++
		if viaChase.Holds != viaRewrite.Holds {
			t.Fatalf("methods disagree on q=%s q'=%s Σ=%s: chase=%v rewrite=%v",
				q, qp, set, viaChase.Holds, viaRewrite.Holds)
		}
	}
	if agreeChecks < 50 {
		t.Errorf("only %d definitive comparisons; fuzz too weak", agreeChecks)
	}
}

// TestIntegrationChaseSatisfies: the completed chase is always a model.
func TestIntegrationChaseSatisfies(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 80; trial++ {
		var set *deps.Set
		if trial%2 == 0 {
			set = gen.RandomNonRecursive(r, 1+r.Intn(4))
		} else {
			set = gen.RandomKeys2(r, 1+r.Intn(3), 3)
		}
		db := randomDBForSchema(r, set, gen.PathCQ(1), 8+r.Intn(20), 4)
		res, err := chase.Run(db, set, chase.Options{MaxSteps: 20000})
		if err != nil {
			if errors.Is(err, chase.ErrFailed) {
				continue // inconsistent random data under keys: fine
			}
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("terminating-class chase did not complete: %s", set)
		}
		if !chase.Satisfies(res.Instance, set) {
			t.Fatalf("chase result violates Σ:\nΣ=%s\nresult=%s", set, res.Instance)
		}
		// Chase is monotone: the input atoms survive (tgd-only sets).
		if set.PureTGDs() {
			for _, a := range db.AtomsUnordered() {
				if !res.Instance.Has(a) {
					t.Fatalf("chase lost input atom %s", a)
				}
			}
		}
	}
}

// TestIntegrationApproximationSoundness: approximations are always
// acyclic and contained in the query.
func TestIntegrationApproximationSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		q := gen.RandomCQ(r, 3+r.Intn(3), 2+r.Intn(3), []string{"E", "F"})
		ap, err := core.Approximate(q, &deps.Set{}, core.Options{SearchBudget: 500})
		if err != nil {
			t.Fatal(err)
		}
		if !IsAcyclic(ap.Query) {
			t.Fatalf("approximation cyclic: %s (of %s)", ap.Query, q)
		}
		dec, err := containment.Contains(ap.Query, q, &deps.Set{}, containment.Options{})
		if err != nil || !dec.Holds {
			t.Fatalf("approximation unsound: %s ⊄ %s (%v)", ap.Query, q, err)
		}
	}
}

// TestIntegrationRewritingDisjunctsSound: every rewriting disjunct is
// Σ-contained in the input query (chase-verified), across random NR
// sets.
func TestIntegrationRewritingDisjunctsSound(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	for trial := 0; trial < 60; trial++ {
		set := gen.RandomNonRecursive(r, 1+r.Intn(3))
		q := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), predsOf(set))
		rw, err := rewrite.Rewrite(q, set, rewrite.Options{MaxDisjuncts: 300})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range rw.UCQ.Disjuncts {
			dec, err := containment.Contains(d, q, set, containment.Options{Method: containment.MethodChase})
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Holds {
				t.Fatalf("unsound disjunct %s for q=%s Σ=%s", d, q, set)
			}
		}
	}
}

// TestIntegrationGameNeverMissesAnswers: the ∃1-cover game is complete
// w.r.t. homomorphisms (Proposition 30 direction) on random inputs.
func TestIntegrationGameNeverMissesAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 80; trial++ {
		q := gen.RandomCQ(r, 2+r.Intn(3), 2+r.Intn(3), []string{"E"})
		db := gen.RandomGraphDB(r, 10+r.Intn(30), 5)
		for _, ans := range hom.Evaluate(q, db) {
			if !core.GuardedGameHasTuple(q, db, ans) {
				t.Fatalf("game rejected certified answer %v of %s", ans, q)
			}
		}
	}
}

// TestIntegrationUCQConsistency: DecideUCQ must agree with manually
// combining per-disjunct decisions and redundancy on random unions.
func TestIntegrationUCQConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(707))
	for trial := 0; trial < 60; trial++ {
		set := gen.RandomNonRecursive(r, 1+r.Intn(2))
		preds := predsOf(set)
		var disjuncts []*cq.CQ
		n := 2 + r.Intn(3)
		for i := 0; i < n; i++ {
			disjuncts = append(disjuncts, gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds))
		}
		u, err := cq.NewUCQ(disjuncts...)
		if err != nil {
			t.Fatal(err)
		}
		opt := core.Options{SearchBudget: 300, SkipCompleteSearch: true}
		res, err := core.DecideUCQ(u, set, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Every non-redundant disjunct has a per-disjunct result, and a
		// Yes union means each was Yes with an acyclic witness.
		for i := range disjuncts {
			if res.Redundant[i] {
				// Redundancy claim: Σ-contained in some other disjunct.
				found := false
				for j := range disjuncts {
					if i == j {
						continue
					}
					dec, err := containment.Contains(disjuncts[i], disjuncts[j], set, containment.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if dec.Holds {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: disjunct %d marked redundant without a container", trial, i)
				}
				continue
			}
			if res.PerDisjunct[i] == nil {
				t.Fatalf("trial %d: missing per-disjunct result %d", trial, i)
			}
			if res.Verdict == core.Yes && res.PerDisjunct[i].Verdict != core.Yes {
				t.Fatalf("trial %d: union yes but disjunct %d is %s", trial, i, res.PerDisjunct[i].Verdict)
			}
		}
		if res.Verdict == core.Yes {
			if res.Witness == nil {
				t.Fatalf("trial %d: yes union without witness", trial)
			}
			for _, w := range res.Witness.Disjuncts {
				if !IsAcyclic(w) {
					t.Fatalf("trial %d: cyclic union witness %s", trial, w)
				}
			}
		}
	}
}

// TestIntegrationMultiHeadRewritingAgreesWithChase adversarially
// cross-checks piece-rewriting against the chase oracle on
// non-recursive sets with multi-atom heads sharing existential
// variables — the hardest shape for the piece conditions.
func TestIntegrationMultiHeadRewritingAgreesWithChase(t *testing.T) {
	r := rand.New(rand.NewSource(808))
	comparisons := 0
	positives := 0
	for trial := 0; trial < 250; trial++ {
		set := gen.RandomNonRecursiveMultiHead(r, 1+r.Intn(3))
		preds := predsOf(set)
		q := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds)
		qp := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds)

		viaChase, err := containment.Contains(q, qp, set, containment.Options{Method: containment.MethodChase})
		if err != nil {
			t.Fatal(err)
		}
		viaRewrite, err := containment.Contains(q, qp, set, containment.Options{Method: containment.MethodRewrite})
		if err != nil {
			t.Fatal(err)
		}
		if !viaChase.Definitive || !viaRewrite.Definitive {
			continue
		}
		comparisons++
		if viaChase.Holds {
			positives++
		}
		if viaChase.Holds != viaRewrite.Holds {
			t.Fatalf("methods disagree:\nq=%s\nq'=%s\nΣ=%s\nchase=%v rewrite=%v",
				q, qp, set, viaChase.Holds, viaRewrite.Holds)
		}
	}
	if comparisons < 100 || positives < 5 {
		t.Errorf("fuzz too weak: %d comparisons, %d positives", comparisons, positives)
	}
}

// TestIntegrationStickyRewritingAgreesWithChase cross-checks the
// rewriting on sticky sets whose chase happens to terminate (weakly
// acyclic), where the chase is a valid oracle.
func TestIntegrationStickyRewritingAgreesWithChase(t *testing.T) {
	r := rand.New(rand.NewSource(809))
	comparisons := 0
	for trial := 0; trial < 300 && comparisons < 80; trial++ {
		set := gen.RandomSticky(r, 1+r.Intn(2), 2)
		if len(set.TGDs) == 0 || !set.IsWeaklyAcyclic() {
			continue
		}
		preds := predsOf(set)
		q := gen.RandomCQ(r, 1+r.Intn(3), 2+r.Intn(2), preds)
		qp := gen.RandomCQ(r, 1+r.Intn(2), 2+r.Intn(2), preds)

		viaChase, err := containment.Contains(q, qp, set, containment.Options{Method: containment.MethodChase})
		if err != nil {
			t.Fatal(err)
		}
		viaRewrite, err := containment.Contains(q, qp, set, containment.Options{
			Method:  containment.MethodRewrite,
			Rewrite: rewrite.Options{MaxDisjuncts: 500},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !viaChase.Definitive || !viaRewrite.Definitive {
			continue
		}
		comparisons++
		if viaChase.Holds != viaRewrite.Holds {
			t.Fatalf("methods disagree:\nq=%s\nq'=%s\nΣ=%s\nchase=%v rewrite=%v",
				q, qp, set, viaChase.Holds, viaRewrite.Holds)
		}
	}
	if comparisons < 40 {
		t.Skipf("only %d definitive comparisons", comparisons)
	}
}
