package semacyclic

import (
	"math/rand"
	"testing"
	"unicode/utf8"

	"semacyclic/internal/chase"
	"semacyclic/internal/containment"
	"semacyclic/internal/core"
	"semacyclic/internal/corpus"
	"semacyclic/internal/cq"
	"semacyclic/internal/deps"
	"semacyclic/internal/gen"
	"semacyclic/internal/instance"
	"semacyclic/internal/term"
)

// Native fuzz harnesses for the three parsers and the differential
// method-agreement property. Seeds live under testdata/fuzz/<Name>/;
// scripts/ci.sh runs each target briefly, and a longer local run is
//
//	go test -fuzz FuzzParseCQ -fuzztime 60s .
//
// A crasher minimized by the fuzzer should be frozen as a corpus case
// (testdata/corpus) once fixed, not only as a fuzz seed.

// FuzzParseCQ: the query parser never panics, accepts only valid
// queries, and its canonical rendering is a parse fixpoint.
func FuzzParseCQ(f *testing.F) {
	for _, s := range []string{
		"q(x) :- E(x,y), E(y,x).",
		"q :- R('a b', 1, x)",
		"ans(x,y) :- Résumé(x,'日本'), E(x,y)",
		"q() :- E(x,",
		"q() :- E(x,y). junk",
		"'",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := cq.Parse(input)
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid query from %q: %v", input, verr)
		}
		render := q.String()
		back, err := cq.Parse(render)
		if err != nil {
			t.Fatalf("canonical rendering of %q does not re-parse: %v", input, err)
		}
		if back.String() != render {
			t.Fatalf("rendering not a fixpoint: %q vs %q", back.String(), render)
		}
	})
}

// FuzzParseDeps: the dependency parser never panics, accepted sets
// validate, render to a parse fixpoint, and every classifier is total
// on them.
func FuzzParseDeps(f *testing.F) {
	for _, s := range []string{
		"Interest(x,z), Class(y,z) -> Owns(x,y).",
		"R(x,y), R(x,z) -> y = z.",
		"E(x,y) -> E(y,z).\n% comment\nG(x,y,z), E(x,y) -> E(y,z).",
		"R(x,y) ->",
		"R(x,y) S(y).",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := deps.Parse(input)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid set from %q: %v", input, verr)
		}
		_ = s.Classes() // classifiers must be total
		_ = s.IsGuarded()
		_ = s.IsSticky()
		_ = s.IsNonRecursive()
		render := s.String()
		back, err := deps.Parse(render)
		if err != nil {
			t.Fatalf("canonical rendering of %q does not re-parse: %v", input, err)
		}
		if back.String() != render {
			t.Fatalf("rendering not a fixpoint: %q vs %q", back.String(), render)
		}
	})
}

// FuzzInstanceRoundTrip: Parse(Dump(I)) == I both for parsed text and
// for instances built directly from fuzz-chosen constants (where Dump
// may refuse only invalid UTF-8).
func FuzzInstanceRoundTrip(f *testing.F) {
	for _, seed := range [][3]string{
		{"R('v1.2').", "a", "b"},
		{"R S(a).", "it's", `back\slash`},
		{"Résumé(é, 日本).", "", " spaced "},
		{"T().", "a,b", "(c)"},
	} {
		f.Add(seed[0], seed[1], seed[2])
	}
	f.Fuzz(func(t *testing.T, input, c1, c2 string) {
		if db, err := instance.Parse(input); err == nil {
			dump, err := db.Dump()
			if err != nil {
				t.Fatalf("parsed instance not dumpable: %v\ninput %q", err, input)
			}
			back, err := instance.Parse(dump)
			if err != nil {
				t.Fatalf("dump does not re-parse: %v\ndump %q", err, dump)
			}
			if !back.Equal(db) {
				t.Fatalf("Parse(Dump(I)) != I for input %q:\n%s\nvs\n%s", input, back, db)
			}
			dump2, err := back.Dump()
			if err != nil || dump2 != dump {
				t.Fatalf("dump not stable for input %q: %v\n%q\nvs\n%q", input, err, dump2, dump)
			}
		}
		// Constructor arm: any constants at all are storable; Dump must
		// quote its way to a faithful round-trip whenever they are valid
		// UTF-8, and must refuse otherwise.
		db := instance.MustFromAtoms(instance.NewAtom("R", term.Const(c1), term.Const(c2)))
		dump, err := db.Dump()
		if !utf8.ValidString(c1) || !utf8.ValidString(c2) {
			if err == nil {
				t.Fatalf("Dump accepted invalid UTF-8 constants %q, %q", c1, c2)
			}
			return
		}
		if err != nil {
			t.Fatalf("Dump failed on constants %q, %q: %v", c1, c2, err)
		}
		back, err := instance.Parse(dump)
		if err != nil {
			t.Fatalf("dump of constants %q, %q does not re-parse: %v\n%q", c1, c2, err, dump)
		}
		if !back.Equal(db) {
			t.Fatalf("constant round trip lost data for %q, %q:\n%s\nvs\n%s", c1, c2, back, db)
		}
	})
}

// FuzzMethodAgreement generates a random (q, Σ, D) workload in a
// fuzz-chosen dependency class, cross-checks every applicable
// evaluation method, asserts the decision pipeline's monotonicity and
// parallelism contracts, and round-trips the database. A disagreement
// is minimized and emitted in corpus eval-case format so it can be
// frozen under testdata/corpus/eval.
func FuzzMethodAgreement(f *testing.F) {
	for i := range gen.WorkloadClasses {
		f.Add(int64(100+i), uint8(i), uint8(2), uint8(3), uint8(6), uint8(3))
	}
	f.Fuzz(func(t *testing.T, seed int64, classByte, nDeps, qAtoms, dbAtoms, domain uint8) {
		class := gen.WorkloadClasses[int(classByte)%len(gen.WorkloadClasses)]
		r := rand.New(rand.NewSource(seed))
		q, set, raw := gen.RandomWorkload(r, class,
			1+int(nDeps)%3, 1+int(qAtoms)%3, 1+int(dbAtoms)%8, 1+int(domain)%4)
		db, err := corpus.SatisfyingDB(raw, set, 2000)
		if err != nil {
			// An egd clash on the raw database is a legitimate outcome,
			// not a bug; evaluate against the unchased instance instead
			// (the cross-check gates Σ-aware arms on satisfaction).
			db = raw
		}
		// The budget bounds worst-case per-input time: the complete
		// search chases one candidate per containment check, and a
		// sticky Σ makes each chase expensive. CrossCheck plus the six
		// monotonicity probes multiply that cost, and the fuzz worker
		// reports inputs slower than ~10s as hangs, so keep the whole
		// battery comfortably under a second per input.
		opt := core.Options{
			SearchBudget: 250,
			Parallelism:  2,
			Containment: containment.Options{
				Chase: chase.Options{MaxSteps: 300, MaxDepth: 3},
			},
		}
		if _, err := core.CrossCheck(q, set, db, opt); err != nil {
			mq, mset, mdb := gen.Minimize(q, set, db,
				func(q2 *cq.CQ, s2 *deps.Set, d2 *instance.Instance) bool {
					_, e := core.CrossCheck(q2, s2, d2, opt)
					return e != nil
				})
			frozen, _ := gen.EmitEvalCase(mq, mset, mdb, "", nil, "minimized fuzz disagreement")
			t.Fatalf("method disagreement (class %s, seed %d): %v\nminimized case:\n%s", class, seed, err, frozen)
		}
		if err := core.CheckLayerMonotonicity(q, set, opt); err != nil {
			t.Fatalf("class %s, seed %d: %v\nq = %s\nΣ = %s", class, seed, err, q, set)
		}
		dump, err := db.Dump()
		if err != nil {
			t.Fatalf("generated database not dumpable: %v", err)
		}
		back, err := instance.Parse(dump)
		if err != nil || !back.Equal(db) {
			t.Fatalf("database round trip failed (class %s, seed %d): %v", class, seed, err)
		}
	})
}
